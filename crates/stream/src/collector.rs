//! The sharded node → collector pipeline of the paper's §7.2 deployment.
//!
//! A Tier-1 backbone runs one measurement node per region; each node
//! builds per-link sketches locally and ships *checkpoints* — not flow
//! tables — to a central collector. This module reproduces that
//! architecture in-process: `shards` node workers on std threads each own
//! a subset of the links of a [`BackboneSnapshot`], hold their links'
//! sketches in one arena-packed [`FleetArena`] (keyed by link index, all
//! bitmaps in one contiguous buffer over one shared schedule — the
//! [`sbitmap_core::ParallelFleet`] worker pattern, wired to a channel)
//! plus one shard-wide [`HyperLogLog`], and send framed v2 checkpoints
//! (`sbitmap_core::codec`) over an `mpsc` channel. Per-link seeds are
//! derived with [`sbitmap_core::fleet::sketch_seed`], so the shipped
//! per-link checkpoints are bit-identical to what standalone `SBitmap`s
//! would produce — sharding and arena packing are execution details. The
//! collector verifies and decodes every frame, then combines them the two
//! ways the estimator family allows:
//!
//! * **mergeable sketches** (the per-shard HLLs share one seed) are
//!   folded with [`MergeableCounter::merge_from`] into a single sketch of
//!   the union of *all* flows across *all* links — one number the bitmap
//!   family cannot produce from per-link state;
//! * **S-bitmaps are not mergeable** (the paper's trade-off), so their
//!   per-link *estimates* are aggregated into the §7.2 summary: the
//!   quantiles of the per-link distinct-count distribution (the Figure 7
//!   view) plus error statistics against the generator's ground truth.
//!
//! Every byte that crosses the channel is a real checkpoint: the pipeline
//! end-to-end exercises encode → frame → checksum → decode → merge, which
//! is exactly what a networked deployment would do with TCP in the
//! middle.

use std::sync::mpsc;
use std::sync::Arc;

use sbitmap_baselines::HyperLogLog;
use sbitmap_core::codec::Checkpoint;
use sbitmap_core::{
    AbsorbOutcome, BatchedCounter, DistinctCounter, FleetArena, FleetDeltaFrame, KeyedEstimates,
    MergeableCounter, RateSchedule, SBitmap, WindowedFleet,
};

use crate::backbone::BackboneSnapshot;

/// Configuration for one pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Number of backbone links (600 = the paper's full snapshot).
    pub links: usize,
    /// Node shards (worker threads); links are dealt round-robin.
    pub shards: usize,
    /// Per-link S-bitmap range `[1, n_max]` (paper §7.2: 1.5×10⁶).
    pub n_max: u64,
    /// Per-link S-bitmap bits (paper §7.2: 8000 ≈ 3% RRMSE).
    pub m_bits: usize,
    /// Registers of each shard's mergeable union sketch.
    pub hll_registers: usize,
    /// Workload + sketch seed.
    pub seed: u64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            links: 150,
            shards: 4,
            n_max: 1_500_000,
            m_bits: 8_000,
            hll_registers: 4_096,
            seed: 0xc011,
        }
    }
}

/// One decoded per-link report at the collector.
#[derive(Debug, Clone)]
pub struct LinkReport {
    /// Link index in the snapshot.
    pub link: usize,
    /// Shard that measured the link.
    pub shard: usize,
    /// The generator's true distinct flow count.
    pub truth: u64,
    /// The restored S-bitmap's estimate.
    pub estimate: f64,
}

/// The collector's aggregate output — the §7.2 summary.
#[derive(Debug, Clone)]
pub struct CollectSummary {
    /// Per-link reports, sorted by link index.
    pub links: Vec<LinkReport>,
    /// Number of node shards that ran.
    pub shards: usize,
    /// Estimate of the distinct flows across the whole backbone, from
    /// merging the shards' HyperLogLogs.
    pub union_estimate: f64,
    /// True total flows fed through the pipeline (sum of link counts;
    /// link flow-id spaces are disjoint by construction).
    pub total_flows: u64,
    /// Checkpoint frames received and verified.
    pub checkpoints: usize,
    /// Total checkpoint bytes that crossed the channel.
    pub bytes_shipped: usize,
    /// Mean absolute relative error of the per-link estimates.
    pub mean_abs_rel_err: f64,
    /// Quantiles of the per-link *estimates* at the probabilities of the
    /// paper's Figure 7 (25%, 50%, 75%, 99%), as `(p, value)` pairs.
    pub estimate_quantiles: Vec<(f64, f64)>,
}

impl CollectSummary {
    /// The per-link estimate quantile probabilities reported (Figure 7's
    /// interior knots).
    pub const QUANTILES: [f64; 4] = [0.25, 0.50, 0.75, 0.99];
}

/// The Figure 7 quantile summary of a per-link estimate sample (sorted
/// in place), at [`CollectSummary::QUANTILES`]. Sorting uses
/// [`f64::total_cmp`], so a NaN estimate — which no healthy estimator
/// produces, but a summary must never *panic* over — sorts to the high
/// end instead of aborting the collector.
pub fn quantile_summary(estimates: &mut [f64]) -> Vec<(f64, f64)> {
    estimates.sort_by(f64::total_cmp);
    CollectSummary::QUANTILES
        .iter()
        .map(|&p| {
            let idx = ((estimates.len() as f64 - 1.0) * p).round() as usize;
            (p, estimates[idx])
        })
        .collect()
}

/// What a node ships: a per-link S-bitmap checkpoint or the shard's
/// final mergeable union sketch.
enum NodeMessage {
    Link {
        shard: usize,
        link: usize,
        bytes: Vec<u8>,
    },
    ShardUnion {
        bytes: Vec<u8>,
    },
}

/// Per-link sketch seed: a pure function of the run seed and the link, so
/// anyone (tests, a remote peer) can rebuild a node's sketch exactly.
/// Delegates to the fleet-family derivation, which is what lets a node
/// hold its links in a [`FleetArena`] and still ship per-link checkpoints
/// indistinguishable from standalone sketches.
pub fn link_seed(seed: u64, link: usize) -> u64 {
    sbitmap_core::fleet::sketch_seed(seed, link as u64)
}

/// Run the sharded pipeline end-to-end and return the collector summary.
///
/// # Errors
///
/// Invalid configuration (zero links/shards, un-dimensionable sketch
/// parameters), or a checkpoint that fails verification at the collector
/// (which would indicate a codec bug, not an I/O hazard — the channel is
/// in-process).
pub fn run_pipeline(cfg: &PipelineConfig) -> Result<CollectSummary, String> {
    if cfg.links == 0 {
        return Err("links must be at least 1".into());
    }
    if cfg.shards == 0 {
        return Err("shards must be at least 1".into());
    }
    // Validate the sketch configuration once, before spawning anything;
    // the schedule (the big per-sketch table) is built once and shared by
    // every shard's arena.
    let schedule =
        Arc::new(RateSchedule::from_memory(cfg.n_max, cfg.m_bits).map_err(|e| e.to_string())?);
    HyperLogLog::new(cfg.hll_registers, 5, cfg.seed).map_err(|e| e.to_string())?;

    let snapshot = BackboneSnapshot::with_links(cfg.links, cfg.seed);
    let (tx, rx) = mpsc::channel::<NodeMessage>();

    let summary = std::thread::scope(|scope| -> Result<CollectSummary, String> {
        // --- node shards ---
        for shard in 0..cfg.shards {
            let tx = tx.clone();
            let snapshot = &snapshot;
            let schedule = schedule.clone();
            scope.spawn(move || {
                // The shard's links live in one arena-packed fleet keyed
                // by link index: a single allocation for every bitmap, no
                // per-link sketch boxes. Per-link seeds derive from the
                // run seed exactly as standalone sketches would, so the
                // shipped checkpoints are bit-identical either way.
                let mut fleet: FleetArena = FleetArena::with_schedule(schedule, cfg.seed);
                // The shard's mergeable union sketch: same (registers,
                // width, seed) on every shard, so the collector can merge.
                let mut union = HyperLogLog::new(cfg.hll_registers, 5, cfg.seed)
                    .expect("validated before spawn");
                // One scratch buffer for the whole worker, sized up front
                // to the shard's largest link so the per-link `extend`
                // never re-grows it mid-loop (the stream iterator cannot
                // report its length, so growth would otherwise happen
                // geometrically inside the hot fill).
                let mut flows: Vec<u64> = Vec::with_capacity(
                    (shard..cfg.links)
                        .step_by(cfg.shards)
                        .map(|link| snapshot.counts()[link] as usize)
                        .max()
                        .unwrap_or(0),
                );
                for link in (shard..cfg.links).step_by(cfg.shards) {
                    flows.clear();
                    flows.extend(snapshot.link_stream(link));
                    fleet.touch(link as u64);
                    fleet.insert_u64s(link as u64, &flows);
                    union.insert_u64_batch(&flows);
                    let bytes = fleet
                        .export_sketch(link as u64)
                        .expect("link touched above")
                        .checkpoint();
                    if tx.send(NodeMessage::Link { shard, link, bytes }).is_err() {
                        return; // collector gone; stop measuring
                    }
                }
                let _ = tx.send(NodeMessage::ShardUnion {
                    bytes: union.checkpoint(),
                });
            });
        }
        // The collector runs on this thread. Drop the original sender so
        // the receive loop ends when every shard has finished.
        drop(tx);

        // --- collector ---
        let mut links: Vec<LinkReport> = Vec::with_capacity(cfg.links);
        let mut merged: Option<HyperLogLog> = None;
        let mut checkpoints = 0usize;
        let mut bytes_shipped = 0usize;
        for msg in rx {
            match msg {
                NodeMessage::Link { shard, link, bytes } => {
                    bytes_shipped += bytes.len();
                    checkpoints += 1;
                    let sketch: SBitmap =
                        Checkpoint::restore(&bytes).map_err(|e| format!("link {link}: {e}"))?;
                    links.push(LinkReport {
                        link,
                        shard,
                        truth: snapshot.counts()[link],
                        estimate: sketch.estimate(),
                    });
                }
                NodeMessage::ShardUnion { bytes } => {
                    bytes_shipped += bytes.len();
                    checkpoints += 1;
                    let sketch: HyperLogLog =
                        Checkpoint::restore(&bytes).map_err(|e| format!("shard union: {e}"))?;
                    merged = Some(match merged.take() {
                        None => sketch,
                        Some(mut acc) => {
                            acc.merge_from(&sketch).map_err(|e| e.to_string())?;
                            acc
                        }
                    });
                }
            }
        }

        links.sort_by_key(|r| r.link);
        if links.len() != cfg.links {
            return Err(format!(
                "collector saw {} of {} links",
                links.len(),
                cfg.links
            ));
        }
        let mean_abs_rel_err = links
            .iter()
            .map(|r| (r.estimate / r.truth as f64 - 1.0).abs())
            .sum::<f64>()
            / links.len() as f64;
        let mut sorted: Vec<f64> = links.iter().map(|r| r.estimate).collect();
        let estimate_quantiles = quantile_summary(&mut sorted);
        Ok(CollectSummary {
            shards: cfg.shards,
            union_estimate: merged.as_ref().map_or(0.0, DistinctCounter::estimate),
            total_flows: snapshot.counts().iter().sum(),
            checkpoints,
            bytes_shipped,
            mean_abs_rel_err,
            estimate_quantiles,
            links,
        })
    })?;
    Ok(summary)
}

// ---------------------------------------------------------------------
// The windowed pipeline: per-epoch checkpoints, a central window ring
// ---------------------------------------------------------------------

/// Configuration for one windowed pipeline run.
#[derive(Debug, Clone)]
pub struct WindowedPipelineConfig {
    /// Number of backbone links.
    pub links: usize,
    /// Node shards (worker threads); links are dealt round-robin.
    pub shards: usize,
    /// Per-link S-bitmap range `[1, n_max]` — size for the *window's*
    /// cardinality, as [`WindowedFleet::new`] advises.
    pub n_max: u64,
    /// Per-link S-bitmap bits per epoch.
    pub m_bits: usize,
    /// Sliding-window span, in epochs (the ring's `W`).
    pub window: usize,
    /// Epochs the run simulates; the final summary covers the last
    /// `min(window, epochs)` of them.
    pub epochs: usize,
    /// Wire rounds per epoch for the delta-coded (v3) lanes: each epoch
    /// is shipped as one round-0 baseline plus `rounds − 1` newly-set-bit
    /// delta frames, against an uncompressed comparator shipping one
    /// *full* frame per round at the same cadence. Purely a wire
    /// granularity knob — per-link sketch state and estimates are
    /// independent of it, and [`run_windowed_pipeline`] (the legacy
    /// one-full-frame-per-epoch lane) ignores it.
    pub rounds: usize,
    /// Workload + sketch seed.
    pub seed: u64,
}

impl Default for WindowedPipelineConfig {
    fn default() -> Self {
        Self {
            links: 150,
            shards: 4,
            n_max: 1_500_000,
            m_bits: 8_000,
            window: 8,
            epochs: 12,
            rounds: 8,
            seed: 0xc011,
        }
    }
}

impl WindowedPipelineConfig {
    /// Flows one link emits per epoch: the snapshot count spread over
    /// the window, so a full window carries roughly the snapshot's
    /// five-minute load (and the `n_max` sizing stays honest).
    fn epoch_flows(&self, count: u64) -> u64 {
        (count / self.window as u64).max(1)
    }

    /// Epochs contributing to the final window.
    fn live_epochs(&self) -> usize {
        self.window.min(self.epochs)
    }
}

/// Build one shard's arena for one epoch: clear it, then for each of the
/// shard's round-robin links refill the flow scratch from the epoch
/// substream and insert. This is the **single definition** both
/// `run_windowed_pipeline`'s node workers and [`ShardFrameSource`]
/// (hence the networked node agent of `sbitmap-daemon`) run, so the two
/// can only ever ship identical frame bytes.
fn fill_shard_epoch(
    cfg: &WindowedPipelineConfig,
    snapshot: &BackboneSnapshot,
    shard: usize,
    epoch: usize,
    fleet: &mut FleetArena,
    flows: &mut Vec<u64>,
) {
    fleet.clear();
    for link in (shard..cfg.links).step_by(cfg.shards) {
        flows.clear();
        flows.extend(snapshot.link_epoch_stream(
            link,
            epoch as u64,
            cfg.epoch_flows(snapshot.counts()[link]),
        ));
        fleet.touch(link as u64);
        fleet.insert_u64s(link as u64, flows);
    }
}

/// A deterministic builder of one node shard's per-epoch `sketch-fleet`
/// frames — byte-for-byte the frames the in-process windowed pipeline
/// ships over its channel. A networked node agent (the `sbitmap agent`
/// subcommand) replays these same bytes over TCP, which is what lets the
/// loopback daemon pipeline be locked bit-identical to
/// [`run_windowed_pipeline`] rather than merely statistically close.
#[derive(Debug)]
pub struct ShardFrameSource {
    cfg: WindowedPipelineConfig,
    snapshot: BackboneSnapshot,
    shard: usize,
    fleet: FleetArena,
    flows: Vec<u64>,
    next_epoch: usize,
}

impl ShardFrameSource {
    /// Create the frame source for `shard` of `cfg.shards`.
    ///
    /// # Errors
    ///
    /// Zero links/shards/window/epochs, a shard index out of range, or
    /// un-dimensionable sketch parameters.
    pub fn new(cfg: &WindowedPipelineConfig, shard: usize) -> Result<Self, String> {
        if cfg.links == 0 || cfg.shards == 0 {
            return Err("links and shards must be at least 1".into());
        }
        if cfg.window == 0 || cfg.epochs == 0 {
            return Err("window and epochs must be at least 1".into());
        }
        if shard >= cfg.shards {
            return Err(format!(
                "shard {shard} out of range ({} shards)",
                cfg.shards
            ));
        }
        let schedule =
            Arc::new(RateSchedule::from_memory(cfg.n_max, cfg.m_bits).map_err(|e| e.to_string())?);
        let snapshot = BackboneSnapshot::with_links(cfg.links, cfg.seed);
        let flows = Vec::with_capacity(
            (shard..cfg.links)
                .step_by(cfg.shards)
                .map(|link| cfg.epoch_flows(snapshot.counts()[link]) as usize)
                .max()
                .unwrap_or(0),
        );
        Ok(Self {
            cfg: cfg.clone(),
            snapshot,
            shard,
            fleet: FleetArena::with_schedule(schedule, cfg.seed),
            flows,
            next_epoch: 0,
        })
    }

    /// The shard this source builds frames for.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Build the next epoch's `(epoch, frame bytes)`; `None` once every
    /// configured epoch has been built.
    pub fn next_frame(&mut self) -> Option<(u64, Vec<u8>)> {
        if self.next_epoch >= self.cfg.epochs {
            return None;
        }
        let epoch = self.next_epoch;
        fill_shard_epoch(
            &self.cfg,
            &self.snapshot,
            self.shard,
            epoch,
            &mut self.fleet,
            &mut self.flows,
        );
        self.next_epoch += 1;
        Some((epoch as u64, self.fleet.checkpoint()))
    }

    /// Build every remaining frame at once — the backlog a node agent
    /// loads before dialing the collector.
    pub fn collect_frames(mut self) -> Vec<(u64, Vec<u8>)> {
        let mut out = Vec::with_capacity(self.cfg.epochs.saturating_sub(self.next_epoch));
        while let Some(f) = self.next_frame() {
            out.push(f);
        }
        out
    }
}

/// One epoch's wire output from a [`DeltaFrameSource`]: the shard's
/// per-link state coded both ways at the same `rounds`-per-epoch cadence,
/// so the compressed and uncompressed lanes carry the *same* information
/// and any divergence in the resulting estimates is a codec bug, not a
/// sampling artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochFrames {
    /// Epoch the frames describe.
    pub epoch: u64,
    /// One full v2 `sketch-fleet` checkpoint per round — the uncompressed
    /// same-cadence comparator lane. Round `r` snapshots the shard after
    /// the first `r + 1` stream chunks, so the last entry is
    /// byte-identical to the [`ShardFrameSource`] frame for this epoch.
    pub fulls: Vec<Vec<u8>>,
    /// One v3 `fleet-delta` frame per round. Round 0 is the baseline
    /// reset — a record for *every* shard link, even still-empty ones,
    /// which is what creates the receiver slots — and later rounds carry
    /// only links with newly-set bits since the previous round.
    pub deltas: Vec<Vec<u8>>,
}

/// A deterministic builder of one node shard's per-epoch **round**
/// frames: the incremental v3 `fleet-delta` chain plus the same-cadence
/// full-frame comparator. Each epoch's per-link substream is split into
/// `cfg.rounds` contiguous chunks; after inserting chunk `r` the source
/// cuts one delta frame (XOR against the previous round's bitmap words —
/// which, because bits are only ever *set* within an epoch, is exactly
/// the newly-set bits) and one full checkpoint. Because the chunks
/// preserve per-key insertion order, the final round's state is
/// bit-identical to [`ShardFrameSource`]'s epoch frame, and OR-absorbing
/// the delta chain reassembles it exactly.
#[derive(Debug)]
pub struct DeltaFrameSource {
    cfg: WindowedPipelineConfig,
    snapshot: BackboneSnapshot,
    shard: usize,
    fleet: FleetArena,
    /// The shard's links, ascending — also the frame record key order.
    links: Vec<u64>,
    /// Per-link bitmap words as of the previous round (aligned with
    /// `links`): the XOR baseline for the next delta.
    prev: Vec<Vec<u64>>,
    /// The whole epoch's flows, generated once, with per-link extents
    /// aligned with `links`; rounds slice chunks out of it.
    flows: Vec<u64>,
    ranges: Vec<std::ops::Range<usize>>,
    next_epoch: usize,
}

impl DeltaFrameSource {
    /// Create the round-frame source for `shard` of `cfg.shards`.
    ///
    /// # Errors
    ///
    /// Zero links/shards/window/epochs/rounds, a shard index out of
    /// range, or un-dimensionable sketch parameters.
    pub fn new(cfg: &WindowedPipelineConfig, shard: usize) -> Result<Self, String> {
        if cfg.rounds == 0 {
            return Err("rounds must be at least 1".into());
        }
        let base = ShardFrameSource::new(cfg, shard)?;
        let links: Vec<u64> = (shard..cfg.links)
            .step_by(cfg.shards)
            .map(|l| l as u64)
            .collect();
        let stride = base.fleet.schedule().dims().m().div_ceil(64);
        let prev = vec![vec![0u64; stride]; links.len()];
        Ok(Self {
            cfg: base.cfg,
            snapshot: base.snapshot,
            shard,
            fleet: base.fleet,
            links,
            prev,
            flows: Vec::new(),
            ranges: Vec::with_capacity(0),
            next_epoch: 0,
        })
    }

    /// The shard this source builds frames for.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Build the next epoch's round frames; `None` once every configured
    /// epoch has been built.
    pub fn next_frames(&mut self) -> Option<EpochFrames> {
        if self.next_epoch >= self.cfg.epochs {
            return None;
        }
        let epoch = self.next_epoch as u64;
        let rounds = self.cfg.rounds;
        self.fleet.clear();
        for prev in &mut self.prev {
            prev.fill(0);
        }
        // Generate each link's epoch substream exactly once — the same
        // stream `fill_shard_epoch` feeds in one go — and remember the
        // per-link extents so each round can take its chunk.
        self.flows.clear();
        self.ranges.clear();
        for &link in &self.links {
            let start = self.flows.len();
            self.flows.extend(self.snapshot.link_epoch_stream(
                link as usize,
                epoch,
                self.cfg.epoch_flows(self.snapshot.counts()[link as usize]),
            ));
            self.ranges.push(start..self.flows.len());
        }
        let schedule = self.fleet.schedule().clone();
        let dims = schedule.dims();
        let mut scratch = vec![0u64; dims.m().div_ceil(64)];
        let mut fulls = Vec::with_capacity(rounds);
        let mut deltas = Vec::with_capacity(rounds);
        for round in 0..rounds {
            for (idx, &link) in self.links.iter().enumerate() {
                let range = &self.ranges[idx];
                let len = range.len();
                let lo = range.start + len * round / rounds;
                let hi = range.start + len * (round + 1) / rounds;
                if round == 0 {
                    self.fleet.touch(link);
                }
                self.fleet.insert_u64s(link, &self.flows[lo..hi]);
            }
            let mut frame = FleetDeltaFrame::new(
                dims.n_max(),
                dims.m(),
                schedule.split().sampling_bits(),
                self.fleet.seed(),
                epoch,
                round as u32,
            );
            for (idx, &link) in self.links.iter().enumerate() {
                let cur = self.fleet.slot_words(link).expect("touched at round 0");
                let prev = &mut self.prev[idx];
                if round == 0 || cur != prev.as_slice() {
                    for (s, (&c, &p)) in scratch.iter_mut().zip(cur.iter().zip(prev.iter())) {
                        *s = c ^ p;
                    }
                    frame.push(link, &scratch);
                    prev.copy_from_slice(cur);
                }
            }
            deltas.push(frame.encode());
            fulls.push(self.fleet.checkpoint());
        }
        self.next_epoch += 1;
        Some(EpochFrames {
            epoch,
            fulls,
            deltas,
        })
    }

    /// Build every remaining epoch's round frames at once — the backlog
    /// a delta-capable node agent loads before dialing the collector.
    pub fn collect_epochs(mut self) -> Vec<EpochFrames> {
        let mut out = Vec::with_capacity(self.cfg.epochs.saturating_sub(self.next_epoch));
        while let Some(f) = self.next_frames() {
            out.push(f);
        }
        out
    }
}

/// One per-link row of the windowed summary.
#[derive(Debug, Clone)]
pub struct WindowedLinkReport {
    /// Link index in the snapshot.
    pub link: usize,
    /// True distinct flows across the final window's epochs (epoch
    /// substreams are disjoint by construction, so the truth is a sum).
    pub truth: u64,
    /// The central ring's sliding-window estimate.
    pub estimate: f64,
}

/// The windowed collector's aggregate output.
#[derive(Debug, Clone)]
pub struct WindowedSummary {
    /// Per-link windowed reports, sorted by link index.
    pub links: Vec<WindowedLinkReport>,
    /// Node shards that ran.
    pub shards: usize,
    /// The window span, in epochs.
    pub window: usize,
    /// Epochs simulated.
    pub epochs: usize,
    /// Epochs contributing to the final window (`min(window, epochs)`).
    pub live_epochs: usize,
    /// Frames received and verified: one per shard per epoch for
    /// [`run_windowed_pipeline`], one per shard per epoch per *round* for
    /// the same-cadence runners.
    pub checkpoints: usize,
    /// Total checkpoint bytes that crossed the channel.
    pub bytes_shipped: usize,
    /// Mean absolute relative error of the windowed estimates.
    pub mean_abs_rel_err: f64,
    /// Quantiles of the per-link windowed estimates at
    /// [`CollectSummary::QUANTILES`].
    pub estimate_quantiles: Vec<(f64, f64)>,
}

/// Run the windowed node → collector pipeline end-to-end.
///
/// Each node shard rebuilds a fresh per-epoch [`FleetArena`] for its
/// links, ships it as one v2 `sketch-fleet` checkpoint per epoch, and
/// the **collector maintains the ring**: a central [`WindowedFleet`]
/// absorbs every shard's epoch frame (shard key sets are disjoint, so
/// the storage-level union reassembles exactly the state a single node
/// would have built), rotating as epochs complete. Frames are replayed
/// in `(epoch, shard)` order, so the summary is a pure function of the
/// configuration — per-link windowed estimates are identical for any
/// shard count, which `tests/windowed_fleet.rs` locks in.
///
/// # Errors
///
/// Invalid configuration (zero links/shards/window/epochs,
/// un-dimensionable sketch parameters) or a checkpoint that fails
/// verification at the collector.
pub fn run_windowed_pipeline(cfg: &WindowedPipelineConfig) -> Result<WindowedSummary, String> {
    if cfg.links == 0 || cfg.shards == 0 {
        return Err("links and shards must be at least 1".into());
    }
    if cfg.window == 0 || cfg.epochs == 0 {
        return Err("window and epochs must be at least 1".into());
    }
    let schedule =
        Arc::new(RateSchedule::from_memory(cfg.n_max, cfg.m_bits).map_err(|e| e.to_string())?);
    let snapshot = BackboneSnapshot::with_links(cfg.links, cfg.seed);
    let (tx, rx) = mpsc::channel::<(usize, usize, Vec<u8>)>();

    std::thread::scope(|scope| -> Result<WindowedSummary, String> {
        // --- node shards: one epoch fleet, rebuilt (cleared) per epoch ---
        for shard in 0..cfg.shards {
            let tx = tx.clone();
            let snapshot = &snapshot;
            let schedule = schedule.clone();
            scope.spawn(move || {
                let mut fleet: FleetArena = FleetArena::with_schedule(schedule, cfg.seed);
                // Same scratch policy as `run_pipeline`: one buffer per
                // worker, pre-sized to the shard's largest per-epoch
                // substream so the fill loop never reallocates.
                let mut flows: Vec<u64> = Vec::with_capacity(
                    (shard..cfg.links)
                        .step_by(cfg.shards)
                        .map(|link| cfg.epoch_flows(snapshot.counts()[link]) as usize)
                        .max()
                        .unwrap_or(0),
                );
                for epoch in 0..cfg.epochs {
                    fill_shard_epoch(cfg, snapshot, shard, epoch, &mut fleet, &mut flows);
                    if tx.send((epoch, shard, fleet.checkpoint())).is_err() {
                        return; // collector gone; stop measuring
                    }
                }
            });
        }
        drop(tx);

        // --- collector: buffer, order by (epoch, shard), replay into the
        // ring. Ordering makes the run deterministic; with disjoint
        // per-shard key sets the absorb order cannot change state, but a
        // reproducible byte stream is worth one sort. ---
        let mut frames: Vec<(usize, usize, Vec<u8>)> = rx.iter().collect();
        frames.sort_by_key(|&(epoch, shard, _)| (epoch, shard));
        if frames.len() != cfg.epochs * cfg.shards {
            return Err(format!(
                "collector saw {} of {} epoch frames",
                frames.len(),
                cfg.epochs * cfg.shards
            ));
        }
        let mut ring: WindowedFleet = WindowedFleet::with_schedule(schedule, cfg.seed, cfg.window)
            .map_err(|e| e.to_string())?;
        let mut checkpoints = 0usize;
        let mut bytes_shipped = 0usize;
        for (epoch, shard, bytes) in &frames {
            bytes_shipped += bytes.len();
            checkpoints += 1;
            let fleet: FleetArena = Checkpoint::restore(bytes)
                .map_err(|e| format!("shard {shard} epoch {epoch}: {e}"))?;
            ring.advance_to(*epoch as u64).map_err(|e| e.to_string())?;
            if !ring
                .absorb_epoch(*epoch as u64, &fleet)
                .map_err(|e| format!("shard {shard} epoch {epoch}: {e}"))?
            {
                return Err(format!("shard {shard} epoch {epoch}: frame expired"));
            }
        }

        // --- the §7.2 summary, now over the sliding window ---
        let live = cfg.live_epochs() as u64;
        let links: Vec<WindowedLinkReport> = ring
            .estimates_sorted()
            .into_iter()
            .map(|(key, estimate)| {
                let link = key as usize;
                WindowedLinkReport {
                    link,
                    truth: live * cfg.epoch_flows(snapshot.counts()[link]),
                    estimate,
                }
            })
            .collect();
        if links.len() != cfg.links {
            return Err(format!("ring holds {} of {} links", links.len(), cfg.links));
        }
        let mean_abs_rel_err = links
            .iter()
            .map(|r| (r.estimate / r.truth as f64 - 1.0).abs())
            .sum::<f64>()
            / links.len() as f64;
        let mut sorted: Vec<f64> = links.iter().map(|r| r.estimate).collect();
        let estimate_quantiles = quantile_summary(&mut sorted);
        Ok(WindowedSummary {
            links,
            shards: cfg.shards,
            window: cfg.window,
            epochs: cfg.epochs,
            live_epochs: cfg.live_epochs(),
            checkpoints,
            bytes_shipped,
            mean_abs_rel_err,
            estimate_quantiles,
        })
    })
}

/// Run the windowed pipeline shipping the compressed **v3 delta lane**:
/// each shard sends `cfg.rounds` incremental `fleet-delta` frames per
/// epoch (round 0 = baseline reset), and the collector OR-absorbs them
/// into the ring via [`WindowedFleet::absorb_delta_from`] — no full-frame
/// materialization. Because bits are only ever *set* within an epoch, the
/// absorbed chain converges to exactly the state the full-frame lanes
/// build, so estimates and quantiles are bit-identical to
/// [`run_windowed_pipeline`] while `bytes_shipped` counts only the delta
/// frames.
///
/// # Errors
///
/// As [`run_windowed_pipeline`], plus zero `rounds` and any delta frame
/// the ring rejects (duplicate, expired, or broken baseline chain —
/// impossible on this lossless in-process channel, so an error indicates
/// a codec bug).
pub fn run_windowed_pipeline_v3(cfg: &WindowedPipelineConfig) -> Result<WindowedSummary, String> {
    run_windowed_rounds(cfg, true)
}

/// Run the windowed pipeline shipping the **uncompressed same-cadence
/// comparator lane**: one full v2 `sketch-fleet` checkpoint per round —
/// the same update granularity as [`run_windowed_pipeline_v3`], coded
/// without deltas. This is the honest baseline for wire-reduction
/// claims: it ships exactly the information of the v3 lane, at the same
/// frame cadence, so `bytes_shipped(full) / bytes_shipped(v3)` measures
/// the coding, not a cadence difference.
///
/// # Errors
///
/// As [`run_windowed_pipeline`], plus zero `rounds`.
pub fn run_windowed_pipeline_rounds(
    cfg: &WindowedPipelineConfig,
) -> Result<WindowedSummary, String> {
    run_windowed_rounds(cfg, false)
}

/// Shared body of the two same-cadence runners: node workers drain a
/// [`DeltaFrameSource`] each (so the bytes are exactly what a networked
/// delta-capable agent would ship), the collector absorbs the selected
/// lane in `(epoch, shard)` order, and only that lane's bytes count as
/// shipped.
fn run_windowed_rounds(
    cfg: &WindowedPipelineConfig,
    compressed: bool,
) -> Result<WindowedSummary, String> {
    if cfg.links == 0 || cfg.shards == 0 {
        return Err("links and shards must be at least 1".into());
    }
    if cfg.window == 0 || cfg.epochs == 0 {
        return Err("window and epochs must be at least 1".into());
    }
    if cfg.rounds == 0 {
        return Err("rounds must be at least 1".into());
    }
    let schedule =
        Arc::new(RateSchedule::from_memory(cfg.n_max, cfg.m_bits).map_err(|e| e.to_string())?);
    let snapshot = BackboneSnapshot::with_links(cfg.links, cfg.seed);
    let (tx, rx) = mpsc::channel::<(usize, EpochFrames)>();

    std::thread::scope(|scope| -> Result<WindowedSummary, String> {
        for shard in 0..cfg.shards {
            let tx = tx.clone();
            scope.spawn(move || {
                let mut source =
                    DeltaFrameSource::new(cfg, shard).expect("config validated before spawn");
                while let Some(frames) = source.next_frames() {
                    if tx.send((shard, frames)).is_err() {
                        return; // collector gone; stop measuring
                    }
                }
            });
        }
        drop(tx);

        let mut frames: Vec<(usize, EpochFrames)> = rx.iter().collect();
        frames.sort_by_key(|(shard, f)| (f.epoch, *shard));
        if frames.len() != cfg.epochs * cfg.shards {
            return Err(format!(
                "collector saw {} of {} epoch frame sets",
                frames.len(),
                cfg.epochs * cfg.shards
            ));
        }
        let mut ring: WindowedFleet = WindowedFleet::with_schedule(schedule, cfg.seed, cfg.window)
            .map_err(|e| e.to_string())?;
        let mut checkpoints = 0usize;
        let mut bytes_shipped = 0usize;
        for (shard, ef) in &frames {
            let epoch = ef.epoch;
            ring.advance_to(epoch).map_err(|e| e.to_string())?;
            if compressed {
                for bytes in &ef.deltas {
                    bytes_shipped += bytes.len();
                    checkpoints += 1;
                    let frame = FleetDeltaFrame::decode(bytes)
                        .map_err(|e| format!("shard {shard} epoch {epoch}: {e}"))?;
                    let round = frame.round;
                    match ring.absorb_delta_from(*shard as u64, &frame) {
                        Ok(AbsorbOutcome::Absorbed) => {}
                        Ok(other) => {
                            return Err(format!(
                                "shard {shard} epoch {epoch} round {round}: frame {other:?} on a lossless channel"
                            ));
                        }
                        Err(e) => {
                            return Err(format!("shard {shard} epoch {epoch} round {round}: {e}"));
                        }
                    }
                }
            } else {
                for bytes in &ef.fulls {
                    bytes_shipped += bytes.len();
                    checkpoints += 1;
                    let fleet: FleetArena = Checkpoint::restore(bytes)
                        .map_err(|e| format!("shard {shard} epoch {epoch}: {e}"))?;
                    // Round prefixes are nested, so re-absorbing each
                    // successive full over the previous one is a plain OR
                    // that lands on the final round's exact state.
                    if !ring
                        .absorb_epoch(epoch, &fleet)
                        .map_err(|e| format!("shard {shard} epoch {epoch}: {e}"))?
                    {
                        return Err(format!("shard {shard} epoch {epoch}: frame expired"));
                    }
                }
            }
        }

        let live = cfg.live_epochs() as u64;
        let links: Vec<WindowedLinkReport> = ring
            .estimates_sorted()
            .into_iter()
            .map(|(key, estimate)| {
                let link = key as usize;
                WindowedLinkReport {
                    link,
                    truth: live * cfg.epoch_flows(snapshot.counts()[link]),
                    estimate,
                }
            })
            .collect();
        if links.len() != cfg.links {
            return Err(format!("ring holds {} of {} links", links.len(), cfg.links));
        }
        let mean_abs_rel_err = links
            .iter()
            .map(|r| (r.estimate / r.truth as f64 - 1.0).abs())
            .sum::<f64>()
            / links.len() as f64;
        let mut sorted: Vec<f64> = links.iter().map(|r| r.estimate).collect();
        let estimate_quantiles = quantile_summary(&mut sorted);
        Ok(WindowedSummary {
            links,
            shards: cfg.shards,
            window: cfg.window,
            epochs: cfg.epochs,
            live_epochs: cfg.live_epochs(),
            checkpoints,
            bytes_shipped,
            mean_abs_rel_err,
            estimate_quantiles,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> PipelineConfig {
        PipelineConfig {
            links: 24,
            shards: 3,
            n_max: 100_000,
            m_bits: 4_000,
            hll_registers: 1_024,
            seed: 7,
        }
    }

    #[test]
    fn pipeline_covers_every_link_exactly_once() {
        let cfg = small();
        let s = run_pipeline(&cfg).unwrap();
        assert_eq!(s.links.len(), 24);
        for (i, r) in s.links.iter().enumerate() {
            assert_eq!(r.link, i);
            assert_eq!(r.shard, i % 3, "round-robin link assignment");
        }
        // 24 link checkpoints + 3 shard unions.
        assert_eq!(s.checkpoints, 27);
        assert!(s.bytes_shipped > 24 * (cfg.m_bits / 8));
    }

    #[test]
    fn estimates_track_truth_and_union_tracks_total() {
        let s = run_pipeline(&small()).unwrap();
        assert!(
            s.mean_abs_rel_err < 0.12,
            "mean |rel err| {} too large",
            s.mean_abs_rel_err
        );
        // Link flow-id spaces are (almost surely) disjoint, so the merged
        // HLL should sit near the summed truth.
        let rel = s.union_estimate / s.total_flows as f64 - 1.0;
        assert!(rel.abs() < 0.12, "union rel err {rel}");
        // Quantiles are sorted and positive.
        assert!(s.estimate_quantiles.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn shard_count_does_not_change_link_reports() {
        // Sharding is an execution detail: per-link estimates and the
        // merged union must be identical for any shard count.
        let mut cfg = small();
        let a = run_pipeline(&cfg).unwrap();
        cfg.shards = 1;
        let b = run_pipeline(&cfg).unwrap();
        cfg.shards = 24;
        let c = run_pipeline(&cfg).unwrap();
        for ((ra, rb), rc) in a.links.iter().zip(&b.links).zip(&c.links) {
            assert_eq!(ra.estimate, rb.estimate, "link {}", ra.link);
            assert_eq!(ra.estimate, rc.estimate, "link {}", ra.link);
        }
        assert_eq!(a.union_estimate, b.union_estimate);
        assert_eq!(a.union_estimate, c.union_estimate);
    }

    #[test]
    fn arena_node_matches_standalone_sketch_per_link() {
        // The node side now packs its links into a FleetArena; the
        // reported estimates must equal what a standalone sketch with
        // the derived per-link seed produces on the same stream.
        let cfg = small();
        let s = run_pipeline(&cfg).unwrap();
        let snapshot = BackboneSnapshot::with_links(cfg.links, cfg.seed);
        for r in s.links.iter().step_by(5) {
            let mut sketch =
                SBitmap::with_memory(cfg.n_max, cfg.m_bits, link_seed(cfg.seed, r.link)).unwrap();
            let flows: Vec<u64> = snapshot.link_stream(r.link).collect();
            sketch.insert_u64s(&flows);
            assert_eq!(sketch.estimate(), r.estimate, "link {}", r.link);
        }
    }

    #[test]
    fn more_shards_than_links_is_fine() {
        let mut cfg = small();
        cfg.links = 2;
        cfg.shards = 8;
        let s = run_pipeline(&cfg).unwrap();
        assert_eq!(s.links.len(), 2);
        assert_eq!(s.checkpoints, 2 + 8, "idle shards still ship a union");
    }

    fn small_windowed() -> WindowedPipelineConfig {
        WindowedPipelineConfig {
            links: 18,
            shards: 3,
            n_max: 100_000,
            m_bits: 4_000,
            window: 3,
            epochs: 5,
            rounds: 3,
            seed: 7,
        }
    }

    #[test]
    fn windowed_pipeline_covers_every_link_with_window_truth() {
        let cfg = small_windowed();
        let s = run_windowed_pipeline(&cfg).unwrap();
        assert_eq!(s.links.len(), 18);
        assert_eq!(s.checkpoints, 5 * 3, "one frame per shard per epoch");
        assert_eq!(s.live_epochs, 3);
        let snapshot = BackboneSnapshot::with_links(cfg.links, cfg.seed);
        for (i, r) in s.links.iter().enumerate() {
            assert_eq!(r.link, i);
            assert_eq!(r.truth, 3 * cfg.epoch_flows(snapshot.counts()[i]));
        }
        assert!(s.bytes_shipped > 0);
        assert!(s.estimate_quantiles.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn windowed_estimates_track_window_truth() {
        let s = run_windowed_pipeline(&small_windowed()).unwrap();
        assert!(
            s.mean_abs_rel_err < 0.15,
            "windowed mean |rel err| {} too large",
            s.mean_abs_rel_err
        );
    }

    #[test]
    fn windowed_shard_count_does_not_change_estimates() {
        let mut cfg = small_windowed();
        let a = run_windowed_pipeline(&cfg).unwrap();
        cfg.shards = 1;
        let b = run_windowed_pipeline(&cfg).unwrap();
        cfg.shards = 4;
        let c = run_windowed_pipeline(&cfg).unwrap();
        for ((ra, rb), rc) in a.links.iter().zip(&b.links).zip(&c.links) {
            assert_eq!(ra.estimate, rb.estimate, "link {}", ra.link);
            assert_eq!(ra.estimate, rc.estimate, "link {}", ra.link);
            assert_eq!(ra.truth, rb.truth, "link {}", ra.link);
        }
    }

    #[test]
    fn windowed_window_larger_than_epochs_is_fine() {
        let mut cfg = small_windowed();
        cfg.window = 10;
        cfg.epochs = 2;
        let s = run_windowed_pipeline(&cfg).unwrap();
        assert_eq!(s.live_epochs, 2);
        assert_eq!(s.checkpoints, 2 * 3);
        assert!(s.mean_abs_rel_err < 0.2, "{}", s.mean_abs_rel_err);
    }

    #[test]
    fn shard_frame_source_reproduces_the_pipeline() {
        // Absorbing every shard's ShardFrameSource frames into a fresh
        // ring — the daemon's ingest path — must reproduce the
        // in-process pipeline's estimates and quantiles exactly.
        let cfg = small_windowed();
        let reference = run_windowed_pipeline(&cfg).unwrap();
        let schedule = Arc::new(RateSchedule::from_memory(cfg.n_max, cfg.m_bits).unwrap());
        let mut ring: WindowedFleet =
            WindowedFleet::with_schedule(schedule, cfg.seed, cfg.window).unwrap();
        let mut frames: Vec<(u64, usize, Vec<u8>)> = Vec::new();
        for shard in 0..cfg.shards {
            let built = ShardFrameSource::new(&cfg, shard).unwrap().collect_frames();
            assert_eq!(built.len(), cfg.epochs);
            // Determinism: a second independently built source emits the
            // same bytes.
            let again = ShardFrameSource::new(&cfg, shard).unwrap().collect_frames();
            assert_eq!(built, again);
            frames.extend(built.into_iter().map(|(e, b)| (e, shard, b)));
        }
        frames.sort_by_key(|&(epoch, shard, _)| (epoch, shard));
        for (epoch, _, bytes) in &frames {
            let fleet: FleetArena = Checkpoint::restore(bytes).unwrap();
            ring.advance_to(*epoch).unwrap();
            assert!(ring.absorb_epoch(*epoch, &fleet).unwrap());
        }
        let estimates = ring.estimates_sorted();
        assert_eq!(estimates.len(), reference.links.len());
        for ((key, est), link) in estimates.iter().zip(&reference.links) {
            assert_eq!(*key as usize, link.link);
            assert_eq!(*est, link.estimate, "link {}", link.link);
        }
        let mut sample: Vec<f64> = estimates.iter().map(|&(_, e)| e).collect();
        assert_eq!(quantile_summary(&mut sample), reference.estimate_quantiles);
        // Out-of-range shard is rejected.
        assert!(ShardFrameSource::new(&cfg, cfg.shards).is_err());
    }

    #[test]
    fn delta_lane_is_bit_identical_to_both_full_lanes() {
        // The whole point of the v3 lane: same estimates, same quantiles,
        // fewer bytes. Any drift between lanes is a codec bug.
        let cfg = small_windowed();
        let legacy = run_windowed_pipeline(&cfg).unwrap();
        let full = run_windowed_pipeline_rounds(&cfg).unwrap();
        let v3 = run_windowed_pipeline_v3(&cfg).unwrap();
        assert_eq!(full.links.len(), legacy.links.len());
        assert_eq!(v3.links.len(), legacy.links.len());
        for ((a, b), c) in legacy.links.iter().zip(&full.links).zip(&v3.links) {
            assert_eq!(a.link, c.link);
            assert_eq!(a.estimate, b.estimate, "full lane, link {}", a.link);
            assert_eq!(a.estimate, c.estimate, "v3 lane, link {}", a.link);
            assert_eq!(a.truth, c.truth, "link {}", a.link);
        }
        assert_eq!(legacy.estimate_quantiles, full.estimate_quantiles);
        assert_eq!(legacy.estimate_quantiles, v3.estimate_quantiles);
        // Same cadence on both round lanes: one frame per shard per epoch
        // per round.
        let expect = cfg.epochs * cfg.shards * cfg.rounds;
        assert_eq!(full.checkpoints, expect);
        assert_eq!(v3.checkpoints, expect);
        assert!(
            v3.bytes_shipped < full.bytes_shipped,
            "delta lane shipped {} vs full lane {}",
            v3.bytes_shipped,
            full.bytes_shipped
        );
    }

    #[test]
    fn delta_frame_source_is_deterministic_and_prefixes_nest() {
        let cfg = small_windowed();
        for shard in 0..cfg.shards {
            let epochs = DeltaFrameSource::new(&cfg, shard).unwrap().collect_epochs();
            let again = DeltaFrameSource::new(&cfg, shard).unwrap().collect_epochs();
            assert_eq!(epochs, again, "shard {shard} bytes are reproducible");
            let legacy = ShardFrameSource::new(&cfg, shard).unwrap().collect_frames();
            let shard_links = (shard..cfg.links).step_by(cfg.shards).count();
            for (ef, (epoch, bytes)) in epochs.iter().zip(&legacy) {
                assert_eq!(ef.epoch, *epoch);
                assert_eq!(ef.fulls.len(), cfg.rounds);
                assert_eq!(ef.deltas.len(), cfg.rounds);
                // The last round prefix is the whole epoch, byte for byte.
                assert_eq!(ef.fulls.last().unwrap(), bytes);
                // Round 0 is a baseline carrying every shard link.
                let baseline = FleetDeltaFrame::decode(&ef.deltas[0]).unwrap();
                assert!(baseline.is_baseline());
                assert_eq!(baseline.records.len(), shard_links);
                for (r, delta) in ef.deltas.iter().enumerate() {
                    let frame = FleetDeltaFrame::decode(delta).unwrap();
                    assert_eq!(frame.epoch, *epoch);
                    assert_eq!(frame.round, r as u32);
                }
            }
        }
        assert!(DeltaFrameSource::new(&cfg, cfg.shards).is_err());
    }

    #[test]
    fn single_round_delta_lane_matches_legacy() {
        // rounds = 1 degenerates to baseline-only frames: still exact.
        let mut cfg = small_windowed();
        cfg.rounds = 1;
        let legacy = run_windowed_pipeline(&cfg).unwrap();
        let v3 = run_windowed_pipeline_v3(&cfg).unwrap();
        for (a, c) in legacy.links.iter().zip(&v3.links) {
            assert_eq!(a.estimate, c.estimate, "link {}", a.link);
        }
        assert_eq!(v3.checkpoints, cfg.epochs * cfg.shards);
    }

    #[test]
    fn round_runners_reject_zero_rounds() {
        let mut cfg = small_windowed();
        cfg.rounds = 0;
        assert!(run_windowed_pipeline_v3(&cfg).is_err());
        assert!(run_windowed_pipeline_rounds(&cfg).is_err());
        assert!(DeltaFrameSource::new(&cfg, 0).is_err());
        // The legacy one-frame-per-epoch runner ignores the knob.
        assert!(run_windowed_pipeline(&cfg).is_ok());
    }

    #[test]
    fn quantile_summary_never_panics_on_nan() {
        let mut sample = vec![3.0, f64::NAN, 1.0, 2.0];
        let q = quantile_summary(&mut sample);
        assert_eq!(q.len(), CollectSummary::QUANTILES.len());
        assert_eq!(q[0].1, 2.0, "25% of [1, 2, 3, NaN]");
        assert!(q[3].1.is_nan(), "NaN sorts high, never panics");
    }

    #[test]
    fn windowed_rejects_degenerate_configs() {
        for broken in [
            WindowedPipelineConfig {
                links: 0,
                ..small_windowed()
            },
            WindowedPipelineConfig {
                shards: 0,
                ..small_windowed()
            },
            WindowedPipelineConfig {
                window: 0,
                ..small_windowed()
            },
            WindowedPipelineConfig {
                epochs: 0,
                ..small_windowed()
            },
            WindowedPipelineConfig {
                m_bits: 1,
                ..small_windowed()
            },
        ] {
            assert!(run_windowed_pipeline(&broken).is_err());
        }
    }

    #[test]
    fn rejects_degenerate_configs() {
        let mut cfg = small();
        cfg.links = 0;
        assert!(run_pipeline(&cfg).is_err());
        let mut cfg = small();
        cfg.shards = 0;
        assert!(run_pipeline(&cfg).is_err());
        let mut cfg = small();
        cfg.m_bits = 1; // un-dimensionable
        assert!(run_pipeline(&cfg).is_err());
    }
}
