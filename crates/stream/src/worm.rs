//! Synthetic worm-outbreak traffic traces (the paper's §7.1 substitute).
//!
//! The paper evaluates on two 9-hour MIT LCS traces from the 2003
//! "Slammer" outbreak (peering links 0 and 1), consuming them as
//! *per-minute distinct flow counts*. The original captures are not
//! redistributable, so this module synthesizes traces with the same
//! statistical signature read off the paper's Figure 5:
//!
//! * per-minute flow counts mostly in the 2^14–2^17 band (link 1 lower,
//!   link 0 higher);
//! * slowly drifting baseline (AR(1) in log2 space);
//! * occasional one-to-few-minute bursts up to ~an order of magnitude
//!   (heavy worm scanners), i.e. "non-stationary and bursty points" (paper §7.1);
//! * 540 minutes per link.
//!
//! The estimator experiments then run exactly as in the paper: one fresh
//! sketch per minute interval, estimate vs ground truth.

use crate::generators::distinct_items;
use sbitmap_hash::rng::{Rng, Xoshiro256StarStar};

/// Which of the two peering links to synthesize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WormLink {
    /// Link 0: the busier link (baseline ≈ 2^16).
    Link0,
    /// Link 1: the quieter link (baseline ≈ 2^15).
    Link1,
}

impl WormLink {
    fn base_log2(self) -> f64 {
        match self {
            WormLink::Link0 => 16.0,
            WormLink::Link1 => 15.0,
        }
    }

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            WormLink::Link0 => "link0",
            WormLink::Link1 => "link1",
        }
    }
}

/// A synthetic per-minute flow-count trace for one link.
#[derive(Debug, Clone)]
pub struct WormTrace {
    link: WormLink,
    seed: u64,
    counts: Vec<u64>,
}

impl WormTrace {
    /// Trace length in minutes (9 hours, as in the paper).
    pub const MINUTES: usize = 540;

    /// Synthesize the trace for `link`, deterministic in `seed`.
    pub fn generate(link: WormLink, seed: u64) -> Self {
        let mut rng = Xoshiro256StarStar::new(seed ^ (link.base_log2().to_bits().rotate_left(17)));
        let mut counts = Vec::with_capacity(Self::MINUTES);
        // AR(1) drift around the link baseline in log2 space.
        let mut drift = 0.0f64;
        let mut burst_left = 0usize;
        let mut burst_height = 0.0f64;
        for _minute in 0..Self::MINUTES {
            drift = 0.97 * drift + rng.normal_with(0.0, 0.08);
            // Occasional multi-minute worm-scanner bursts (~2% of minutes
            // start one; geometric duration, mean 2 minutes).
            if burst_left == 0 && rng.bernoulli(0.02) {
                burst_left = rng.geometric(0.5) as usize;
                burst_height = 0.8 + rng.next_f64() * 2.2; // +0.8..3.0 in log2
            }
            let burst = if burst_left > 0 {
                burst_left -= 1;
                burst_height
            } else {
                0.0
            };
            let log2_count = link.base_log2() + drift + burst + rng.normal_with(0.0, 0.10);
            let count = 2f64.powf(log2_count).round().max(1.0) as u64;
            counts.push(count);
        }
        Self { link, seed, counts }
    }

    /// The link this trace models.
    pub fn link(&self) -> WormLink {
        self.link
    }

    /// Per-minute distinct flow counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// The distinct flow-id stream for one minute interval. Flow ids are
    /// unique within the minute (the per-minute estimators see each flow
    /// at least once; duplicates don't change any sketch and are elided
    /// for speed — the sketches' duplicate-idempotence is covered by unit
    /// tests).
    pub fn minute_stream(&self, minute: usize) -> crate::generators::DistinctItems {
        let n = self.counts[minute];
        distinct_items(
            self.seed
                .wrapping_mul(0x2545_f491_4f6c_dd1d)
                .wrapping_add(minute as u64)
                ^ (self.link.base_log2().to_bits()),
            n,
        )
    }

    /// A *packet-level* stream for one minute: every flow appears at
    /// least once, with a heavy-tailed packet multiplicity (geometric
    /// tail, mean ≈ 3 packets/flow — worm scan flows are single-packet,
    /// normal flows longer), shuffled into arrival order. The distinct
    /// count equals `counts()[minute]` exactly.
    ///
    /// The accuracy experiments feed [`WormTrace::minute_stream`]
    /// (duplicates cannot change any sketch — that invariance is tested
    /// separately and packet replay only costs time); this method is for
    /// end-to-end demos and duplicate-correctness tests at trace scale.
    pub fn minute_packet_stream(&self, minute: usize) -> Vec<u64> {
        let mut rng = Xoshiro256StarStar::new(
            self.seed
                .wrapping_mul(0x9e6c_63d0_876a_68e5)
                .wrapping_add(minute as u64),
        );
        let flows: Vec<u64> = self.minute_stream(minute).collect();
        let mut packets = Vec::with_capacity(flows.len() * 3);
        for &flow in &flows {
            // 60% single-packet (scan-like), the rest geometric with
            // mean 6 — overall mean ≈ 3 packets per flow.
            let copies = if rng.bernoulli(0.6) {
                1
            } else {
                rng.geometric(1.0 / 6.0).min(1_000)
            };
            for _ in 0..copies {
                packets.push(flow);
            }
        }
        rng.shuffle(&mut packets);
        packets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_deterministic() {
        let a = WormTrace::generate(WormLink::Link1, 42);
        let b = WormTrace::generate(WormLink::Link1, 42);
        assert_eq!(a.counts(), b.counts());
    }

    #[test]
    fn links_and_seeds_differ() {
        let a = WormTrace::generate(WormLink::Link1, 42);
        let b = WormTrace::generate(WormLink::Link0, 42);
        let c = WormTrace::generate(WormLink::Link1, 43);
        assert_ne!(a.counts(), b.counts());
        assert_ne!(a.counts(), c.counts());
    }

    #[test]
    fn counts_live_in_the_figure5_band() {
        for link in [WormLink::Link0, WormLink::Link1] {
            let t = WormTrace::generate(link, 7);
            assert_eq!(t.counts().len(), WormTrace::MINUTES);
            // Bulk of the trace between 2^13 and 2^18, nothing above 2^20
            // (the paper's design maximum N = 1e6).
            let in_band = t
                .counts()
                .iter()
                .filter(|&&c| (1 << 13..1 << 18).contains(&(c as usize)))
                .count();
            assert!(in_band as f64 > 0.9 * WormTrace::MINUTES as f64);
            assert!(t.counts().iter().all(|&c| c < 1_000_000));
        }
    }

    #[test]
    fn trace_has_bursts() {
        let t = WormTrace::generate(WormLink::Link1, 7);
        let median = {
            let mut v = t.counts().to_vec();
            v.sort_unstable();
            v[v.len() / 2] as f64
        };
        let bursty = t
            .counts()
            .iter()
            .filter(|&&c| c as f64 > 3.0 * median)
            .count();
        assert!(bursty > 0, "no bursty minutes generated");
    }

    #[test]
    fn minute_streams_have_exact_counts() {
        let t = WormTrace::generate(WormLink::Link0, 9);
        for minute in [0usize, 100, 539] {
            let items: Vec<u64> = t.minute_stream(minute).collect();
            assert_eq!(items.len() as u64, t.counts()[minute]);
            let set: std::collections::HashSet<u64> = items.iter().copied().collect();
            assert_eq!(set.len(), items.len(), "minute {minute} has duplicate ids");
        }
    }

    #[test]
    fn packet_stream_preserves_distinct_count() {
        let t = WormTrace::generate(WormLink::Link1, 11);
        let minute = 17;
        let packets = t.minute_packet_stream(minute);
        let distinct: std::collections::HashSet<u64> = packets.iter().copied().collect();
        assert_eq!(distinct.len() as u64, t.counts()[minute]);
        assert!(
            packets.len() as u64 > t.counts()[minute],
            "packet stream should contain duplicates"
        );
        // Deterministic in the seed.
        assert_eq!(packets, t.minute_packet_stream(minute));
    }

    #[test]
    fn different_minutes_have_different_flows() {
        let t = WormTrace::generate(WormLink::Link0, 9);
        let a: std::collections::HashSet<u64> = t.minute_stream(0).collect();
        let b: std::collections::HashSet<u64> = t.minute_stream(1).collect();
        assert!(a.intersection(&b).count() < a.len() / 10);
    }
}
