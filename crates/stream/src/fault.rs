//! Deterministic fault injection for the `sbitmapd` transport layer.
//!
//! A [`FaultPlan`] describes, as pure data, every failure the robustness
//! suite injects between a node agent and the collector daemon:
//!
//! * **cut** — the connection dies after N written bytes (writes fail
//!   with `BrokenPipe`, reads return EOF), exercising reconnect +
//!   resume-from-last-ack;
//! * **stall** — one write blocks for a fixed duration, exercising the
//!   server's read deadline and idle handling;
//! * **corrupt** — one byte at a fixed stream offset is bit-flipped,
//!   exercising checksum detection and the error-frame-instead-of-
//!   connection-death path (payload hit) or desync close + reconnect
//!   (header hit);
//! * **duplicate / reorder** — frame-level faults the agent applies to
//!   its own send queue, exercising the collector's at-least-once
//!   absorb guard and epoch replay ordering.
//!
//! Plans are **seeded and finite**: [`FaultPlan::seeded`] derives every
//! parameter from a `u64`, and byte-level faults afflict only the first
//! [`FaultPlan::faulty_connections`] connection attempts — later
//! attempts run clean, so every faulty run converges. That is what lets
//! the property tests assert *bit-identical* collector state with and
//! without faults across a sweep of seeds, rather than merely "it
//! eventually worked".

use std::io::{self, Read, Write};
use std::time::Duration;

use sbitmap_hash::mix64;

/// A deterministic description of the faults to inject into one
/// agent↔daemon link. `Default` is the clean plan (no faults).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// How many connection attempts (counted from 0) receive the
    /// byte-level faults below; attempts past this run clean. 0 disables
    /// byte-level faults entirely.
    pub faulty_connections: u32,
    /// Kill the connection after this many written bytes.
    pub cut_after: Option<u64>,
    /// Block one write for this duration, just before the byte at this
    /// stream offset goes out.
    pub stall: Option<(u64, Duration)>,
    /// XOR 0x20 into the written byte at this stream offset.
    pub corrupt_at: Option<u64>,
    /// Agent-side: send every k-th queued frame twice.
    pub duplicate_every: Option<u64>,
    /// Agent-side: swap each k-th adjacent frame pair (epoch reorder).
    pub swap_every: Option<u64>,
}

impl FaultPlan {
    /// The clean plan: no faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// `true` when the plan injects nothing.
    pub fn is_clean(&self) -> bool {
        *self == Self::none()
    }

    /// Derive a mixed fault plan from a seed. Every parameter is a pure
    /// function of `seed`; roughly half the seeds enable each fault
    /// family, so a sweep covers single faults and combinations.
    ///
    /// `stall_ms` bounds the injected stall (keep it above *and* below
    /// the deadlines under test in different seeds by picking the range
    /// at the call site).
    pub fn seeded(seed: u64, stall_ms: u64) -> Self {
        let r = |lane: u64| mix64(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ lane);
        let cut = r(1) % 3 != 0;
        let corrupt = r(3) % 2 == 0;
        let stall = r(5) % 3 == 0;
        Self {
            // At least one faulty attempt whenever any byte fault is on.
            faulty_connections: 1 + (r(0) % 2) as u32,
            cut_after: cut.then(|| 512 + r(2) % (64 * 1024)),
            stall: stall.then(|| {
                (
                    r(6) % 2048,
                    Duration::from_millis(1 + r(7) % stall_ms.max(1)),
                )
            }),
            corrupt_at: corrupt.then(|| 16 + r(4) % 4096),
            duplicate_every: (r(8) % 2 == 0).then(|| 1 + r(9) % 3),
            swap_every: (r(10) % 2 == 0).then(|| 2 + r(11) % 3),
        }
    }

    /// The byte-level slice of this plan for connection attempt
    /// `attempt`: the full plan while the attempt is within
    /// [`FaultPlan::faulty_connections`], the clean plan afterwards.
    /// Frame-level faults (duplicate/swap) are not part of the stream
    /// wrapper and are untouched.
    pub fn for_attempt(&self, attempt: u32) -> Self {
        if attempt < self.faulty_connections {
            self.clone()
        } else {
            Self {
                duplicate_every: self.duplicate_every,
                swap_every: self.swap_every,
                ..Self::none()
            }
        }
    }
}

/// A [`Read`]+[`Write`] wrapper that applies a [`FaultPlan`]'s
/// byte-level faults to the write side of a transport.
///
/// After a cut fires, writes fail with `BrokenPipe` and reads return
/// EOF — from the wrapped peer's side the connection simply drops when
/// the caller gives up and closes the underlying stream.
#[derive(Debug)]
pub struct FaultyStream<S> {
    inner: S,
    written: u64,
    cut_after: Option<u64>,
    stall: Option<(u64, Duration)>,
    corrupt_at: Option<u64>,
    cut: bool,
}

impl<S> FaultyStream<S> {
    /// Wrap `inner` with the byte-level faults of `plan` (frame-level
    /// faults are applied by the agent's send queue, not here).
    pub fn new(inner: S, plan: &FaultPlan) -> Self {
        Self {
            inner,
            written: 0,
            cut_after: plan.cut_after,
            stall: plan.stall,
            corrupt_at: plan.corrupt_at,
            cut: false,
        }
    }

    /// The wrapped transport.
    pub fn get_ref(&self) -> &S {
        &self.inner
    }
}

impl<S: Write> Write for FaultyStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.cut {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "injected cut"));
        }
        if buf.is_empty() {
            return Ok(0);
        }
        let start = self.written;
        // Stall: one write blocks just before the byte at the planned
        // offset leaves.
        if let Some((offset, wait)) = self.stall {
            if offset >= start && offset < start + buf.len() as u64 {
                std::thread::sleep(wait);
                self.stall = None;
            }
        }
        // Cut: allow bytes up to the planned offset, then fail forever.
        let allowed = match self.cut_after {
            Some(cut) if cut <= start => {
                self.cut = true;
                return Err(io::Error::new(io::ErrorKind::BrokenPipe, "injected cut"));
            }
            Some(cut) => ((cut - start) as usize).min(buf.len()),
            None => buf.len(),
        };
        // Corrupt: flip one bit of the byte at the planned offset.
        let n = if let Some(offset) = self.corrupt_at {
            if offset >= start && offset < start + allowed as u64 {
                let mut copy = buf[..allowed].to_vec();
                copy[(offset - start) as usize] ^= 0x20;
                let n = self.inner.write(&copy)?;
                if offset < start + n as u64 {
                    self.corrupt_at = None;
                }
                n
            } else {
                self.inner.write(&buf[..allowed])?
            }
        } else {
            self.inner.write(&buf[..allowed])?
        };
        self.written += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.cut {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "injected cut"));
        }
        self.inner.flush()
    }
}

impl<S: Read> Read for FaultyStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.cut {
            return Ok(0); // the link is gone; EOF
        }
        self.inner.read(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic_and_varied() {
        let a = FaultPlan::seeded(42, 10);
        let b = FaultPlan::seeded(42, 10);
        assert_eq!(a, b);
        assert!(!a.is_clean());
        // Across a small sweep every fault family fires at least once.
        let plans: Vec<FaultPlan> = (0..32).map(|s| FaultPlan::seeded(s, 10)).collect();
        assert!(plans.iter().any(|p| p.cut_after.is_some()));
        assert!(plans.iter().any(|p| p.corrupt_at.is_some()));
        assert!(plans.iter().any(|p| p.stall.is_some()));
        assert!(plans.iter().any(|p| p.duplicate_every.is_some()));
        assert!(plans.iter().any(|p| p.swap_every.is_some()));
        // And plans eventually go clean at the byte level.
        for p in &plans {
            let late = p.for_attempt(p.faulty_connections);
            assert_eq!(late.cut_after, None);
            assert_eq!(late.corrupt_at, None);
            assert_eq!(late.duplicate_every, p.duplicate_every);
        }
    }

    #[test]
    fn cut_stops_the_stream_at_the_exact_byte() {
        let mut s = FaultyStream::new(
            io::Cursor::new(Vec::new()),
            &FaultPlan {
                faulty_connections: 1,
                cut_after: Some(5),
                ..FaultPlan::none()
            },
        );
        assert_eq!(s.write(&[1, 2, 3]).unwrap(), 3);
        assert_eq!(s.write(&[4, 5, 6, 7]).unwrap(), 2, "truncated at the cut");
        assert!(s.write(&[8]).is_err());
        assert!(s.flush().is_err());
        let mut buf = [0u8; 4];
        assert_eq!(s.read(&mut buf).unwrap(), 0, "EOF after the cut");
        assert_eq!(s.get_ref().get_ref(), &vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn corrupt_flips_exactly_one_byte_once() {
        let mut out = Vec::new();
        {
            let mut s = FaultyStream::new(
                &mut out,
                &FaultPlan {
                    faulty_connections: 1,
                    corrupt_at: Some(2),
                    ..FaultPlan::none()
                },
            );
            s.write_all(&[0u8; 4]).unwrap();
            s.write_all(&[0u8; 4]).unwrap();
        }
        assert_eq!(out, vec![0, 0, 0x20, 0, 0, 0, 0, 0]);
    }
}
