//! Item-stream generators with controlled distinct counts and duplication.

use sbitmap_hash::mix64;
use sbitmap_hash::rng::{Rng, Xoshiro256StarStar};

/// An iterator over exactly `n` distinct `u64` items, decorrelated across
/// `stream_id`s (different ids produce disjoint-in-distribution item sets).
///
/// Items are `base + i` for a stream-specific 64-bit base: distinctness
/// within the stream is structural, and the sketches' own hashing removes
/// any sequential structure.
#[derive(Debug, Clone)]
pub struct DistinctItems {
    next: u64,
    remaining: u64,
}

impl Iterator for DistinctItems {
    type Item = u64;

    #[inline]
    fn next(&mut self) -> Option<u64> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let item = self.next;
        self.next = self.next.wrapping_add(1);
        Some(item)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = usize::try_from(self.remaining).unwrap_or(usize::MAX);
        (n, Some(n))
    }
}

impl ExactSizeIterator for DistinctItems {}

/// `n` distinct items for the given stream id.
pub fn distinct_items(stream_id: u64, n: u64) -> DistinctItems {
    DistinctItems {
        next: mix64(stream_id.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x5851_f42d_4c95_7f2d),
        remaining: n,
    }
}

/// A stream of `total` items drawn from `n` distinct values with
/// Zipf(`alpha`)-distributed frequencies, in random order. Returns the
/// materialized stream plus the number of values that actually occurred
/// (the ground-truth distinct count — for small `total` not every value
/// is hit).
///
/// This is the duplicate-heavy workload shape of the paper's motivating
/// applications (flow keys repeat per packet; peers repeat per
/// connection).
pub fn zipf_stream(stream_id: u64, n: u64, total: u64, alpha: f64) -> (Vec<u64>, u64) {
    assert!(n > 0, "need at least one distinct value");
    assert!(alpha >= 0.0, "alpha must be non-negative");
    let mut rng = Xoshiro256StarStar::new(stream_id ^ 0xabcd_ef01_2345_6789);

    // Cumulative Zipf weights over ranks 1..=n.
    let mut cumulative = Vec::with_capacity(n as usize);
    let mut acc = 0.0f64;
    for rank in 1..=n {
        acc += (rank as f64).powf(-alpha);
        cumulative.push(acc);
    }

    let base = distinct_items(stream_id, n);
    let values: Vec<u64> = base.collect();
    let mut out = Vec::with_capacity(total as usize);
    let mut seen = vec![false; n as usize];
    let mut distinct_hit = 0u64;
    for _ in 0..total {
        let u = rng.next_f64() * acc;
        let idx = cumulative.partition_point(|&c| c < u).min(n as usize - 1);
        if !seen[idx] {
            seen[idx] = true;
            distinct_hit += 1;
        }
        out.push(values[idx]);
    }
    (out, distinct_hit)
}

/// Shuffle a materialized stream in place, deterministically in the seed.
pub fn shuffle_stream(items: &mut [u64], seed: u64) {
    let mut rng = Xoshiro256StarStar::new(seed ^ 0x1357_9bdf_2468_ace0);
    rng.shuffle(items);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn distinct_items_are_distinct_and_exact() {
        let items: Vec<u64> = distinct_items(1, 10_000).collect();
        assert_eq!(items.len(), 10_000);
        let set: HashSet<u64> = items.iter().copied().collect();
        assert_eq!(set.len(), 10_000);
    }

    #[test]
    fn different_streams_differ() {
        let a: Vec<u64> = distinct_items(1, 100).collect();
        let b: Vec<u64> = distinct_items(2, 100).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn size_hint_is_exact() {
        let it = distinct_items(3, 42);
        assert_eq!(it.len(), 42);
    }

    #[test]
    fn zipf_stream_counts_ground_truth() {
        let (items, distinct) = zipf_stream(7, 1_000, 50_000, 1.1);
        assert_eq!(items.len(), 50_000);
        let set: HashSet<u64> = items.iter().copied().collect();
        assert_eq!(set.len() as u64, distinct);
        assert!(distinct <= 1_000);
        // With 50 draws per value on average most values appear.
        assert!(distinct > 500, "only {distinct} distinct");
    }

    #[test]
    fn zipf_alpha_zero_is_uniform() {
        let (items, _) = zipf_stream(9, 100, 100_000, 0.0);
        // Uniform: the most common value should appear ~1000 times ± noise.
        let mut counts = std::collections::HashMap::new();
        for &i in &items {
            *counts.entry(i).or_insert(0u32) += 1;
        }
        let max = *counts.values().max().unwrap();
        assert!(max < 1_300, "max count {max} too skewed for uniform");
    }

    #[test]
    fn zipf_high_alpha_is_skewed() {
        let (items, _) = zipf_stream(9, 100, 100_000, 2.0);
        let mut counts = std::collections::HashMap::new();
        for &i in &items {
            *counts.entry(i).or_insert(0u32) += 1;
        }
        let max = *counts.values().max().unwrap();
        assert!(max > 50_000, "max count {max} not skewed enough");
    }

    #[test]
    fn shuffle_preserves_multiset() {
        let (mut items, _) = zipf_stream(11, 50, 1_000, 1.0);
        let mut before = items.clone();
        shuffle_stream(&mut items, 1);
        assert_ne!(before, items);
        before.sort_unstable();
        let mut after = items;
        after.sort_unstable();
        assert_eq!(before, after);
    }
}
