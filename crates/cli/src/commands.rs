//! Subcommand implementations, written against generic reader/writer so
//! every command is unit-testable without a process.

use std::io::{BufRead, Write};
use std::sync::Arc;

use sbitmap_baselines::memory_model;
use sbitmap_baselines::{
    AdaptiveBitmap, AdaptiveSampling, DistinctSampling, ExactCounter, FmSketch, HyperLogLog,
    KMinValues, LinearCounting, LogLog, MrBitmap, VirtualBitmap,
};
use sbitmap_bench::harness::Measurement;
use sbitmap_core::{simulate, Dimensioning, DistinctCounter, RateSchedule, SBitmap};
use sbitmap_hash::rng::Xoshiro256StarStar;
use sbitmap_hash::HashKind;

use crate::args::{parse, Options};

/// Usage text printed on errors.
pub const USAGE: &str = "\
usage: sbitmap <command> [flags]

commands:
  count      read items from stdin (one per line), print the estimate
             flags: --sketch NAME --n-max N [--error E | --memory-bits M] --seed S
                    --hash splitmix64|xxh64|murmur3|carter-wegman (s-bitmap only)
             sketches: s-bitmap linear-counting virtual-bitmap adaptive-bitmap
                       mr-bitmap fm-pcsa loglog hyperloglog adaptive-sampling
                       distinct-sampling kmv exact
  plan       print the memory each sketch family needs for a target
             flags: --n-max N --error E
  compare    feed stdin to every sketch at the same memory budget
             flags: --n-max N --memory-bits M --seed S
  simulate   Monte-Carlo the S-bitmap error for a configuration (no input)
             flags: --n-max N [--error E | --memory-bits M] --n CARD --reps R
  bench-ingest
             time scalar vs batched vs concurrent ingestion on the
             backbone/worm generators and write a JSON report
             flags: --links L --pairs P --budget-ms MS --threads T
                    --seed S --out PATH (default BENCH_ingest.json)

number flags accept k/m suffixes and scientific notation (64k, 1.5m, 1e6)";

/// Dispatch `argv` (already stripped of the program name).
///
/// # Errors
///
/// Returns a human-readable message for bad arguments, impossible
/// configurations or I/O failures.
pub fn dispatch(
    argv: &[String],
    input: &mut impl BufRead,
    out: &mut impl Write,
) -> Result<(), String> {
    let (command, rest) = argv.split_first().ok_or("missing command")?;
    let opts = parse(rest)?;
    match command.as_str() {
        "count" => count(&opts, input, out),
        "plan" => plan(&opts, out),
        "compare" => compare(&opts, input, out),
        "simulate" => simulate_cmd(&opts, out),
        "bench-ingest" => bench_ingest(&opts, out),
        other => Err(format!("unknown command `{other}`")),
    }
    .map_err(|e| e.to_string())
}

fn io_err(e: std::io::Error) -> String {
    format!("i/o: {e}")
}

fn hash_kind(name: &str) -> Result<HashKind, String> {
    HashKind::ALL
        .into_iter()
        .find(|k| k.name() == name)
        .ok_or_else(|| format!("unknown hash `{name}` (see usage)"))
}

fn sbitmap_schedule(opts: &Options) -> Result<RateSchedule, String> {
    match (opts.error, opts.memory_bits) {
        (Some(e), None) => RateSchedule::from_error(opts.n_max, e),
        (None, Some(m)) => RateSchedule::from_memory(opts.n_max, m),
        (None, None) => RateSchedule::from_error(opts.n_max, 0.02),
        (Some(_), Some(_)) => unreachable!("rejected by the parser"),
    }
    .map_err(|e| e.to_string())
}

fn sbitmap_for(opts: &Options) -> Result<SBitmap<Box<dyn sbitmap_hash::Hasher64>>, String> {
    let kind = hash_kind(&opts.hash)?;
    if kind == HashKind::CarterWegman {
        eprintln!(
            "warning: carter-wegman (2-universal) hashing is unreliable on \
             structured keys under adaptive sampling; see EXPERIMENTS.md"
        );
    }
    let schedule = Arc::new(sbitmap_schedule(opts)?);
    Ok(SBitmap::with_shared_schedule(
        schedule,
        kind.build(opts.seed),
    ))
}

fn build_sketch(name: &str, opts: &Options) -> Result<Box<dyn DistinctCounter>, String> {
    if name == "s-bitmap" {
        return Ok(Box::new(sbitmap_for(opts)?));
    }
    // The baselines are sized from an explicit budget; derive one from
    // the error target via the S-bitmap dimensioning when not given.
    let m = match opts.memory_bits {
        Some(m) => m,
        None => Dimensioning::from_error(opts.n_max, opts.error.unwrap_or(0.02))
            .map_err(|e| e.to_string())?
            .m(),
    };
    let seed = opts.seed;
    let n_max = opts.n_max;
    let boxed: Box<dyn DistinctCounter> = match name {
        "linear-counting" => Box::new(LinearCounting::new(m, seed).map_err(|e| e.to_string())?),
        "virtual-bitmap" => {
            Box::new(VirtualBitmap::for_cardinality(m, n_max, seed).map_err(|e| e.to_string())?)
        }
        "adaptive-bitmap" => Box::new(AdaptiveBitmap::new(m, seed).map_err(|e| e.to_string())?),
        "mr-bitmap" => Box::new(MrBitmap::with_memory(m, n_max, seed).map_err(|e| e.to_string())?),
        "fm-pcsa" => Box::new(FmSketch::with_memory(m, seed).map_err(|e| e.to_string())?),
        "loglog" => Box::new(LogLog::with_memory(m, n_max, seed).map_err(|e| e.to_string())?),
        "hyperloglog" => {
            Box::new(HyperLogLog::with_memory(m, n_max, seed).map_err(|e| e.to_string())?)
        }
        "adaptive-sampling" => {
            Box::new(AdaptiveSampling::with_memory(m, seed).map_err(|e| e.to_string())?)
        }
        "distinct-sampling" => {
            Box::new(DistinctSampling::with_memory(m, seed).map_err(|e| e.to_string())?)
        }
        "kmv" => Box::new(KMinValues::with_memory(m, seed).map_err(|e| e.to_string())?),
        "exact" => Box::new(ExactCounter::new(seed)),
        other => return Err(format!("unknown sketch `{other}` (see usage)")),
    };
    Ok(boxed)
}

fn count(opts: &Options, input: &mut impl BufRead, out: &mut impl Write) -> Result<(), String> {
    let mut sketch = build_sketch(&opts.sketch, opts)?;
    let mut lines = 0u64;
    let mut buf = String::new();
    loop {
        buf.clear();
        if input.read_line(&mut buf).map_err(io_err)? == 0 {
            break;
        }
        let item = buf.trim_end_matches(['\n', '\r']);
        sketch.insert_bytes(item.as_bytes());
        lines += 1;
    }
    writeln!(
        out,
        "{:.0} distinct (from {} lines; {} using {} bits)",
        sketch.estimate(),
        lines,
        sketch.name(),
        sketch.memory_bits()
    )
    .map_err(io_err)?;
    Ok(())
}

fn plan(opts: &Options, out: &mut impl Write) -> Result<(), String> {
    let eps = opts.error.unwrap_or(0.02);
    let dims = Dimensioning::from_error(opts.n_max, eps).map_err(|e| e.to_string())?;
    writeln!(
        out,
        "target: N = {}, RRMSE = {:.2}%",
        opts.n_max,
        eps * 100.0
    )
    .map_err(io_err)?;
    writeln!(out, "\nmethod        bits      bytes     vs S-bitmap").map_err(io_err)?;
    let sb = dims.m() as f64;
    for (name, bits) in [
        ("S-bitmap", sb),
        (
            "HyperLogLog",
            memory_model::hyperloglog_bits(opts.n_max, eps),
        ),
        ("LogLog", memory_model::loglog_bits(opts.n_max, eps)),
        ("FM/PCSA", memory_model::fm_bits(eps)),
    ] {
        writeln!(
            out,
            "{name:<12} {bits:>8.0}  {:>8.0}  {:>6.2}x",
            bits / 8.0,
            bits / sb
        )
        .map_err(io_err)?;
    }
    writeln!(
        out,
        "\nS-bitmap: C = {:.1}, r = {:.6}, b_max = {} of m = {}",
        dims.c(),
        dims.r(),
        dims.b_max(),
        dims.m()
    )
    .map_err(io_err)?;
    Ok(())
}

fn compare(opts: &Options, input: &mut impl BufRead, out: &mut impl Write) -> Result<(), String> {
    // Buffer the stream once; feed every sketch the same items.
    let mut items: Vec<Vec<u8>> = Vec::new();
    let mut buf = String::new();
    loop {
        buf.clear();
        if input.read_line(&mut buf).map_err(io_err)? == 0 {
            break;
        }
        items.push(buf.trim_end_matches(['\n', '\r']).as_bytes().to_vec());
    }
    let names = [
        "s-bitmap",
        "linear-counting",
        "virtual-bitmap",
        "adaptive-bitmap",
        "mr-bitmap",
        "fm-pcsa",
        "loglog",
        "hyperloglog",
        "adaptive-sampling",
        "distinct-sampling",
        "kmv",
        "exact",
    ];
    writeln!(out, "{} input lines\n", items.len()).map_err(io_err)?;
    writeln!(out, "sketch             estimate       bits").map_err(io_err)?;
    for name in names {
        let mut sketch = build_sketch(name, opts)?;
        for item in &items {
            sketch.insert_bytes(item);
        }
        writeln!(
            out,
            "{:<17} {:>10.0} {:>10}",
            sketch.name(),
            sketch.estimate(),
            sketch.memory_bits()
        )
        .map_err(io_err)?;
    }
    Ok(())
}

fn simulate_cmd(opts: &Options, out: &mut impl Write) -> Result<(), String> {
    let n = opts.n.ok_or("simulate needs --n CARD")?;
    let schedule: Arc<RateSchedule> = Arc::new(sbitmap_schedule(opts)?);
    let dims = *schedule.dims();
    if n > dims.n_max() {
        return Err(format!(
            "--n {n} exceeds the configured range N = {}",
            dims.n_max()
        ));
    }
    let stats = sbitmap_stats::replicate(opts.reps, |r| {
        let mut rng = Xoshiro256StarStar::new(sbitmap_hash::mix64(r ^ 0xc11));
        (
            n as f64,
            simulate::simulate_estimate(&schedule, n, &mut rng),
        )
    });
    writeln!(
        out,
        "config: N = {}, m = {} bits, C = {:.1}, theoretical RRMSE = {:.3}%",
        dims.n_max(),
        dims.m(),
        dims.c(),
        dims.epsilon() * 100.0
    )
    .map_err(io_err)?;
    writeln!(
        out,
        "simulated at n = {n} over {} replicates: RRMSE = {:.3}%, bias = {:+.3}%, |err| q99 = {:.3}%",
        stats.count(),
        stats.rrmse() * 100.0,
        stats.mean_bias() * 100.0,
        stats.quantile_abs(0.99) * 100.0
    )
    .map_err(io_err)?;
    Ok(())
}

fn bench_ingest(opts: &Options, out: &mut impl Write) -> Result<(), String> {
    let cfg = sbitmap_bench::ingest::IngestConfig {
        links: opts.links.max(1),
        max_pairs: opts.pairs.max(1),
        budget_ms: opts.budget_ms.max(1),
        max_threads: opts.threads.max(1),
        seed: opts.seed,
    };
    writeln!(
        out,
        "ingest bench: {} links, ≤{} pairs, {} ms/case, ≤{} threads",
        cfg.links, cfg.max_pairs, cfg.budget_ms, cfg.max_threads
    )
    .map_err(io_err)?;
    let results = sbitmap_bench::ingest::run(&cfg);
    for m in &results {
        writeln!(out, "{}", m.row()).map_err(io_err)?;
    }
    let json = sbitmap_bench::ingest::report_json(&cfg, &results);
    std::fs::write(&opts.out, &json).map_err(|e| format!("write {}: {e}", opts.out))?;
    let scalar = results
        .iter()
        .find(|m| m.name == "backbone_fleet_scalar")
        .map(Measurement::items_per_sec)
        .unwrap_or(0.0);
    let batched = results
        .iter()
        .find(|m| m.name == "backbone_fleet_batched")
        .map(Measurement::items_per_sec)
        .unwrap_or(0.0);
    if scalar > 0.0 {
        writeln!(
            out,
            "batched vs scalar on backbone: {:.2}x",
            batched / scalar
        )
        .map_err(io_err)?;
    }
    writeln!(out, "wrote {}", opts.out).map_err(io_err)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(argv: &str, stdin: &str) -> Result<String, String> {
        let argv: Vec<String> = argv.split_whitespace().map(String::from).collect();
        let mut input = stdin.as_bytes();
        let mut out = Vec::new();
        dispatch(&argv, &mut input, &mut out)?;
        Ok(String::from_utf8(out).expect("utf8 output"))
    }

    #[test]
    fn count_small_exact_stream() {
        let out = run(
            "count --sketch exact --n-max 1000",
            "alice\nbob\nalice\ncarol\n",
        )
        .unwrap();
        assert!(out.starts_with("3 distinct"), "{out}");
    }

    #[test]
    fn count_with_sbitmap_is_close() {
        let stdin: String = (0..5000).map(|i| format!("user-{i}\nuser-{i}\n")).collect();
        let out = run("count --n-max 100k --error 0.03 --seed 7", &stdin).unwrap();
        let est: f64 = out.split_whitespace().next().unwrap().parse().unwrap();
        assert!((est / 5000.0 - 1.0).abs() < 0.15, "{out}");
    }

    #[test]
    fn plan_prints_all_methods() {
        let out = run("plan --n-max 1e6 --error 0.01", "").unwrap();
        for needle in ["S-bitmap", "HyperLogLog", "LogLog", "FM/PCSA", "b_max"] {
            assert!(out.contains(needle), "missing {needle} in {out}");
        }
    }

    #[test]
    fn compare_runs_every_sketch() {
        let stdin: String = (0..2000).map(|i| format!("flow-{i}\n")).collect();
        let out = run("compare --n-max 100k --memory-bits 4000 --seed 3", &stdin).unwrap();
        for name in ["s-bitmap", "hyperloglog", "mr-bitmap", "exact"] {
            assert!(out.contains(name), "missing {name} in {out}");
        }
    }

    #[test]
    fn simulate_reports_near_theory() {
        let out = run(
            "simulate --n-max 1m --memory-bits 8000 --n 100k --reps 600",
            "",
        )
        .unwrap();
        assert!(out.contains("theoretical RRMSE"), "{out}");
        // Parse simulated rrmse and compare loosely with 2.2% theory.
        let line = out.lines().nth(1).unwrap();
        let rrmse: f64 = line
            .split("RRMSE = ")
            .nth(1)
            .unwrap()
            .split('%')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!((1.4..3.4).contains(&rrmse), "simulated rrmse {rrmse}");
    }

    #[test]
    fn simulate_rejects_n_beyond_range() {
        assert!(run("simulate --n-max 1000 --memory-bits 500 --n 5000", "").is_err());
    }

    #[test]
    fn unknown_command_and_sketch_error() {
        assert!(run("bogus", "").is_err());
        assert!(run("count --sketch nope", "").is_err());
        assert!(run("count --hash nope", "a\n").is_err());
    }

    #[test]
    fn count_with_alternate_hash() {
        let stdin: String = (0..3000).map(|i| format!("k{i}\n")).collect();
        let out = run(
            "count --hash xxh64 --n-max 100k --error 0.03 --seed 5",
            &stdin,
        )
        .unwrap();
        let est: f64 = out.split_whitespace().next().unwrap().parse().unwrap();
        assert!((est / 3000.0 - 1.0).abs() < 0.2, "{out}");
    }

    #[test]
    fn bench_ingest_writes_report() {
        let path = std::env::temp_dir().join("sbitmap_test_bench_ingest.json");
        let argv = format!(
            "bench-ingest --links 4 --pairs 2k --budget-ms 2 --threads 2 --out {}",
            path.display()
        );
        let out = run(&argv, "").unwrap();
        assert!(out.contains("backbone_fleet_scalar"), "{out}");
        assert!(out.contains("worm_concurrent_t2"), "{out}");
        assert!(out.contains("batched vs scalar"), "{out}");
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"bench\": \"ingest\""));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn crlf_lines_are_trimmed() {
        let out = run("count --sketch exact", "a\r\nb\r\na\r\n").unwrap();
        assert!(out.starts_with("2 distinct"), "{out}");
    }
}
