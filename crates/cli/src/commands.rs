//! Subcommand implementations, written against generic reader/writer so
//! every command is unit-testable without a process.

use std::io::{BufRead, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use sbitmap_baselines::memory_model;
use sbitmap_baselines::{
    AdaptiveBitmap, AdaptiveSampling, DistinctSampling, ExactCounter, FmSketch, HyperLogLog,
    KMinValues, LinearCounting, LogLog, MrBitmap, VirtualBitmap,
};
use sbitmap_bench::harness::Measurement;
use sbitmap_core::codec::{peek_kind, Checkpoint, CounterKind, FleetDeltaFrame};
use sbitmap_core::journal::{self, JournalConfig};
use sbitmap_core::{
    simulate, Dimensioning, DistinctCounter, MergeableCounter, RateSchedule, SBitmap,
};
use sbitmap_daemon::{
    query_once, run_agent_rounds, run_agent_rounds_failover, AgentConfig, Daemon, DaemonConfig,
};
use sbitmap_hash::rng::Xoshiro256StarStar;
use sbitmap_hash::{HashKind, SplitMix64Hasher};
use sbitmap_stream::collector::{
    run_pipeline, run_windowed_pipeline, PipelineConfig, WindowedPipelineConfig,
};
use sbitmap_stream::net::{ConfigEcho, Message, QueryReply, QueryRequest};
use sbitmap_stream::DeltaFrameSource;

use crate::args::{parse, Options};

/// Usage text printed on errors.
pub const USAGE: &str = "\
usage: sbitmap <command> [flags]

commands:
  count      read items from stdin (one per line), print the estimate
             flags: --sketch NAME --n-max N [--error E | --memory-bits M] --seed S
                    --hash splitmix64|xxh64|murmur3|carter-wegman (s-bitmap only)
             sketches: s-bitmap linear-counting virtual-bitmap adaptive-bitmap
                       mr-bitmap fm-pcsa loglog hyperloglog adaptive-sampling
                       distinct-sampling kmv exact
  plan       print the memory each sketch family needs for a target
             flags: --n-max N --error E
  compare    feed stdin to every sketch at the same memory budget
             flags: --n-max N --memory-bits M --seed S
  simulate   Monte-Carlo the S-bitmap error for a configuration (no input)
             flags: --n-max N [--error E | --memory-bits M] --n CARD --reps R
  checkpoint read items from stdin, write a binary checkpoint file
             flags: --sketch NAME --n-max N [--error E | --memory-bits M]
                    --seed S --out PATH (default sketch.ckpt)
             sketches: s-bitmap linear-counting virtual-bitmap mr-bitmap
                       fm-pcsa loglog hyperloglog kmv
  restore    verify a checkpoint file, print its kind and estimate
             usage: restore FILE
  merge      union-merge checkpoints of one mergeable kind
             usage: merge FILE FILE... [--out PATH]
             (s-bitmap checkpoints are not mergeable — the paper's §3
              trade-off; aggregate their estimates with `collect`)
  collect    run the sharded node→collector pipeline on the synthetic
             backbone (paper §7.2) and print the aggregate summary
             flags: --links L --shards K --seed S
  window     run the *windowed* pipeline: node shards ship one
             checkpoint per epoch, the collector maintains a central
             sliding-window ring and prints last-W-epochs estimates
             flags: --links L --shards K --window W --epochs E --seed S
  serve      run the collector daemon: a TCP ingest listener and a query
             listener over a central sliding-window ring; type `drain`
             on stdin (or send `query drain`) to stop and checkpoint
             flags: --listen ADDR --query-listen ADDR --window W
                    --seed S --credits C --deadline-ms MS
                    --out CKPT_PATH (final ring checkpoint on drain)
                    --data-dir DIR (write-ahead journal + snapshots; on
                      restart the ring recovers to the last acked frame)
                    --snapshot-every N (frames between snapshots,
                      default 1024; 0 keeps the journal only)
                    --standby-of HOST:PORT (start as a standby: follow
                      that primary's journal stream; promote later with
                      `query promote`)
                    --initial-term T (fencing term to start in;
                      recovery adopts a higher journaled term)
  recover    inspect a `serve --data-dir` directory without starting a
             daemon: snapshot state, journal segments, record counts and
             any torn tail a crash left behind
             usage: recover DIR
  agent      build one node shard's epoch frames (byte-identical to the
             in-process pipeline's) and deliver them to a collector over
             TCP, reconnecting with backed-off retries until every frame
             is acked
             flags: --connect HOST:PORT --links L --shards K --shard I
                    --window W --epochs E --seed S --deadline-ms MS
                    --agent-id ID (default shard + 1)
                    --peers A:P,B:P (ordered collector list; the agent
                      fails over down the list on refusal or timeout)
  query      ask a running collector one question over its query port
             usage: query estimate|fill|top|summary|status|promote|drain
                    --connect HOST:PORT
             flags: --key K (estimate/fill) --top N --deadline-ms MS
             (`summary` prints the same quantile rows as `window`;
              `status` reports role/term/replication counters;
              `promote` turns a standby into the acting primary)
  bench-ingest
             time scalar vs batched vs concurrent ingestion on the
             backbone/worm generators and write a JSON report
             flags: --links L --pairs P --budget-ms MS --threads T
                    --seed S --out PATH (default BENCH_ingest.json)
  bench-collect
             time the node→collector pipeline at 1..=K shards and write
             a JSON report
             flags: --links L --shards K --budget-ms MS --seed S
                    --out PATH (default BENCH_collect.json)
  bench-fleet
             time fleet storage flavors (HashMap vs arena vs sharded
             arena, plus sparse-vs-dense on a Zipf per-flow workload)
             and write a JSON report
             flags: --links L --pairs P --shards K --budget-ms MS
                    --seed S --out PATH (default BENCH_fleet.json)
                    --generator backbone|zipf|all (default backbone)
                    --keys N (Zipf distinct keys, default 1.2m)
                    --assert-min-speedup X (fail unless arena ≥ X·legacy)
                    --assert-max-rss-ratio X (fail if sparse peak RSS
                      > X·dense on the zipf lanes)
                    --assert-max-slowdown X (fail if sparse zipf ingest
                      > X·dense per item)
  bench-window
             time sliding-window fleet ingest at W ∈ {2, 8, 32} epochs
             vs the plain arena, plus the fused window query vs its
             naive three-pass reference, and write a JSON report
             flags: --links L --pairs P --budget-ms MS --seed S
                    --out PATH (default BENCH_window.json)
                    --assert-max-overhead X (fail if w8 > X·arena)
                    --assert-min-query-speedup X (fail unless the fused
                      query ≥ X times the naive reference lane)
  bench-daemon
             time the full loopback daemon pipeline (TCP agents → framed
             ingest → bounded absorb → drain) fault-free, under a seeded
             reconnect storm, with the write-ahead journal on, and
             through a snapshot+replay recovery, and write a JSON report
             flags: --links L --shards K --window W --epochs E
                    --budget-ms MS --seed S
                    --out PATH (default BENCH_daemon.json)
                    --assert-max-journal-overhead X (fail if journaled
                      ingest > X·clean loopback)
                    --assert-max-replication-overhead X (fail if the
                      replicated lane > X·clean loopback)

number flags accept k/m suffixes and scientific notation (64k, 1.5m, 1e6)";

/// Dispatch `argv` (already stripped of the program name).
///
/// # Errors
///
/// Returns a human-readable message for bad arguments, impossible
/// configurations or I/O failures.
pub fn dispatch(
    argv: &[String],
    input: &mut impl BufRead,
    out: &mut impl Write,
) -> Result<(), String> {
    let (command, rest) = argv.split_first().ok_or("missing command")?;
    let opts = parse(rest)?;
    // Only restore/merge/recover (paths) and query (the request kind)
    // take positional arguments; a stray token anywhere else is a usage
    // error, not something to silently ignore.
    if !matches!(command.as_str(), "restore" | "merge" | "query" | "recover") {
        if let Some(stray) = opts.paths.first() {
            return Err(format!("unexpected argument `{stray}` for `{command}`"));
        }
    }
    match command.as_str() {
        "count" => count(&opts, input, out),
        "plan" => plan(&opts, out),
        "compare" => compare(&opts, input, out),
        "simulate" => simulate_cmd(&opts, out),
        "checkpoint" => checkpoint_cmd(&opts, input, out),
        "restore" => restore_cmd(&opts, out),
        "merge" => merge_cmd(&opts, out),
        "collect" => collect_cmd(&opts, out),
        "window" => window_cmd(&opts, out),
        "serve" => serve_cmd(&opts, input, out),
        "recover" => recover_cmd(&opts, out),
        "agent" => agent_cmd(&opts, out),
        "query" => query_cmd(&opts, out),
        "bench-ingest" => bench_ingest(&opts, out),
        "bench-collect" => bench_collect(&opts, out),
        "bench-fleet" => bench_fleet(&opts, out),
        "bench-window" => bench_window(&opts, out),
        "bench-daemon" => bench_daemon(&opts, out),
        other => Err(format!("unknown command `{other}`")),
    }
    .map_err(|e| e.to_string())
}

fn io_err(e: std::io::Error) -> String {
    format!("i/o: {e}")
}

fn hash_kind(name: &str) -> Result<HashKind, String> {
    HashKind::ALL
        .into_iter()
        .find(|k| k.name() == name)
        .ok_or_else(|| format!("unknown hash `{name}` (see usage)"))
}

fn sbitmap_schedule(opts: &Options) -> Result<RateSchedule, String> {
    match (opts.error, opts.memory_bits) {
        (Some(e), None) => RateSchedule::from_error(opts.n_max, e),
        (None, Some(m)) => RateSchedule::from_memory(opts.n_max, m),
        (None, None) => RateSchedule::from_error(opts.n_max, 0.02),
        (Some(_), Some(_)) => unreachable!("rejected by the parser"),
    }
    .map_err(|e| e.to_string())
}

fn sbitmap_for(opts: &Options) -> Result<SBitmap<Box<dyn sbitmap_hash::Hasher64>>, String> {
    let kind = hash_kind(&opts.hash)?;
    if kind == HashKind::CarterWegman {
        eprintln!(
            "warning: carter-wegman (2-universal) hashing is unreliable on \
             structured keys under adaptive sampling; see EXPERIMENTS.md"
        );
    }
    let schedule = Arc::new(sbitmap_schedule(opts)?);
    Ok(SBitmap::with_shared_schedule(
        schedule,
        kind.build(opts.seed),
    ))
}

fn build_sketch(name: &str, opts: &Options) -> Result<Box<dyn DistinctCounter>, String> {
    if name == "s-bitmap" {
        return Ok(Box::new(sbitmap_for(opts)?));
    }
    // The baselines are sized from an explicit budget; derive one from
    // the error target via the S-bitmap dimensioning when not given.
    let m = match opts.memory_bits {
        Some(m) => m,
        None => Dimensioning::from_error(opts.n_max, opts.error.unwrap_or(0.02))
            .map_err(|e| e.to_string())?
            .m(),
    };
    let seed = opts.seed;
    let n_max = opts.n_max;
    let boxed: Box<dyn DistinctCounter> = match name {
        "linear-counting" => Box::new(LinearCounting::new(m, seed).map_err(|e| e.to_string())?),
        "virtual-bitmap" => {
            Box::new(VirtualBitmap::for_cardinality(m, n_max, seed).map_err(|e| e.to_string())?)
        }
        "adaptive-bitmap" => Box::new(AdaptiveBitmap::new(m, seed).map_err(|e| e.to_string())?),
        "mr-bitmap" => Box::new(MrBitmap::with_memory(m, n_max, seed).map_err(|e| e.to_string())?),
        "fm-pcsa" => Box::new(FmSketch::with_memory(m, seed).map_err(|e| e.to_string())?),
        "loglog" => Box::new(LogLog::with_memory(m, n_max, seed).map_err(|e| e.to_string())?),
        "hyperloglog" => {
            Box::new(HyperLogLog::with_memory(m, n_max, seed).map_err(|e| e.to_string())?)
        }
        "adaptive-sampling" => {
            Box::new(AdaptiveSampling::with_memory(m, seed).map_err(|e| e.to_string())?)
        }
        "distinct-sampling" => {
            Box::new(DistinctSampling::with_memory(m, seed).map_err(|e| e.to_string())?)
        }
        "kmv" => Box::new(KMinValues::with_memory(m, seed).map_err(|e| e.to_string())?),
        "exact" => Box::new(ExactCounter::new(seed)),
        other => return Err(format!("unknown sketch `{other}` (see usage)")),
    };
    Ok(boxed)
}

fn count(opts: &Options, input: &mut impl BufRead, out: &mut impl Write) -> Result<(), String> {
    let mut sketch = build_sketch(&opts.sketch, opts)?;
    let mut lines = 0u64;
    let mut buf = String::new();
    loop {
        buf.clear();
        if input.read_line(&mut buf).map_err(io_err)? == 0 {
            break;
        }
        let item = buf.trim_end_matches(['\n', '\r']);
        sketch.insert_bytes(item.as_bytes());
        lines += 1;
    }
    writeln!(
        out,
        "{:.0} distinct (from {} lines; {} using {} bits)",
        sketch.estimate(),
        lines,
        sketch.name(),
        sketch.memory_bits()
    )
    .map_err(io_err)?;
    Ok(())
}

fn plan(opts: &Options, out: &mut impl Write) -> Result<(), String> {
    let eps = opts.error.unwrap_or(0.02);
    let dims = Dimensioning::from_error(opts.n_max, eps).map_err(|e| e.to_string())?;
    writeln!(
        out,
        "target: N = {}, RRMSE = {:.2}%",
        opts.n_max,
        eps * 100.0
    )
    .map_err(io_err)?;
    writeln!(out, "\nmethod        bits      bytes     vs S-bitmap").map_err(io_err)?;
    let sb = dims.m() as f64;
    for (name, bits) in [
        ("S-bitmap", sb),
        (
            "HyperLogLog",
            memory_model::hyperloglog_bits(opts.n_max, eps),
        ),
        ("LogLog", memory_model::loglog_bits(opts.n_max, eps)),
        ("FM/PCSA", memory_model::fm_bits(eps)),
    ] {
        writeln!(
            out,
            "{name:<12} {bits:>8.0}  {:>8.0}  {:>6.2}x",
            bits / 8.0,
            bits / sb
        )
        .map_err(io_err)?;
    }
    writeln!(
        out,
        "\nS-bitmap: C = {:.1}, r = {:.6}, b_max = {} of m = {}",
        dims.c(),
        dims.r(),
        dims.b_max(),
        dims.m()
    )
    .map_err(io_err)?;
    Ok(())
}

fn compare(opts: &Options, input: &mut impl BufRead, out: &mut impl Write) -> Result<(), String> {
    // Buffer the stream once; feed every sketch the same items.
    let mut items: Vec<Vec<u8>> = Vec::new();
    let mut buf = String::new();
    loop {
        buf.clear();
        if input.read_line(&mut buf).map_err(io_err)? == 0 {
            break;
        }
        items.push(buf.trim_end_matches(['\n', '\r']).as_bytes().to_vec());
    }
    let names = [
        "s-bitmap",
        "linear-counting",
        "virtual-bitmap",
        "adaptive-bitmap",
        "mr-bitmap",
        "fm-pcsa",
        "loglog",
        "hyperloglog",
        "adaptive-sampling",
        "distinct-sampling",
        "kmv",
        "exact",
    ];
    writeln!(out, "{} input lines\n", items.len()).map_err(io_err)?;
    writeln!(out, "sketch             estimate       bits").map_err(io_err)?;
    for name in names {
        let mut sketch = build_sketch(name, opts)?;
        for item in &items {
            sketch.insert_bytes(item);
        }
        writeln!(
            out,
            "{:<17} {:>10.0} {:>10}",
            sketch.name(),
            sketch.estimate(),
            sketch.memory_bits()
        )
        .map_err(io_err)?;
    }
    Ok(())
}

fn simulate_cmd(opts: &Options, out: &mut impl Write) -> Result<(), String> {
    let n = opts.n.ok_or("simulate needs --n CARD")?;
    let schedule: Arc<RateSchedule> = Arc::new(sbitmap_schedule(opts)?);
    let dims = *schedule.dims();
    if n > dims.n_max() {
        return Err(format!(
            "--n {n} exceeds the configured range N = {}",
            dims.n_max()
        ));
    }
    let stats = sbitmap_stats::replicate(opts.reps, |r| {
        let mut rng = Xoshiro256StarStar::new(sbitmap_hash::mix64(r ^ 0xc11));
        (
            n as f64,
            simulate::simulate_estimate(&schedule, n, &mut rng),
        )
    });
    writeln!(
        out,
        "config: N = {}, m = {} bits, C = {:.1}, theoretical RRMSE = {:.3}%",
        dims.n_max(),
        dims.m(),
        dims.c(),
        dims.epsilon() * 100.0
    )
    .map_err(io_err)?;
    writeln!(
        out,
        "simulated at n = {n} over {} replicates: RRMSE = {:.3}%, bias = {:+.3}%, |err| q99 = {:.3}%",
        stats.count(),
        stats.rrmse() * 100.0,
        stats.mean_bias() * 100.0,
        stats.quantile_abs(0.99) * 100.0
    )
    .map_err(io_err)?;
    Ok(())
}

/// The memory budget in bits for checkpointable sketches, mirroring
/// `build_sketch`'s derivation.
fn budget_bits(opts: &Options) -> Result<usize, String> {
    match opts.memory_bits {
        Some(m) => Ok(m),
        None => Ok(
            Dimensioning::from_error(opts.n_max, opts.error.unwrap_or(0.02))
                .map_err(|e| e.to_string())?
                .m(),
        ),
    }
}

fn checkpoint_cmd(
    opts: &Options,
    input: &mut impl BufRead,
    out: &mut impl Write,
) -> Result<(), String> {
    /// Stream stdin line by line into the sketch (O(1) memory, like
    /// `count`), then serialize. Returns (bytes, estimate, bits, lines).
    fn ingest<T: DistinctCounter + Checkpoint>(
        mut sketch: T,
        input: &mut impl BufRead,
    ) -> Result<(Vec<u8>, f64, usize, u64), String> {
        let mut lines = 0u64;
        let mut buf = String::new();
        loop {
            buf.clear();
            if input.read_line(&mut buf).map_err(io_err)? == 0 {
                break;
            }
            sketch.insert_bytes(buf.trim_end_matches(['\n', '\r']).as_bytes());
            lines += 1;
        }
        Ok((
            sketch.checkpoint(),
            sketch.estimate(),
            sketch.memory_bits(),
            lines,
        ))
    }

    if opts.hash != "splitmix64" {
        return Err(format!(
            "checkpoints embed only the hash *seed* and restore with the \
             default splitmix64 family; --hash {} cannot be recorded",
            opts.hash
        ));
    }
    let m = budget_bits(opts)?;
    let (seed, n_max) = (opts.seed, opts.n_max);
    let err = |e: sbitmap_core::SBitmapError| e.to_string();
    let (bytes, estimate, bits, lines) = match opts.sketch.as_str() {
        "s-bitmap" => {
            let schedule = Arc::new(sbitmap_schedule(opts)?);
            let sketch: SBitmap =
                SBitmap::with_shared_schedule(schedule, SplitMix64Hasher::new(seed));
            ingest(sketch, input)?
        }
        "linear-counting" => ingest(LinearCounting::new(m, seed).map_err(err)?, input)?,
        "virtual-bitmap" => ingest(
            VirtualBitmap::for_cardinality(m, n_max, seed).map_err(err)?,
            input,
        )?,
        "mr-bitmap" => ingest(MrBitmap::with_memory(m, n_max, seed).map_err(err)?, input)?,
        "fm-pcsa" => ingest(FmSketch::with_memory(m, seed).map_err(err)?, input)?,
        "loglog" => ingest(LogLog::with_memory(m, n_max, seed).map_err(err)?, input)?,
        "hyperloglog" => ingest(
            HyperLogLog::with_memory(m, n_max, seed).map_err(err)?,
            input,
        )?,
        "kmv" => ingest(KMinValues::with_memory(m, seed).map_err(err)?, input)?,
        other => {
            return Err(format!(
                "sketch `{other}` is not checkpointable (see usage)"
            ))
        }
    };
    let path = if opts.out.is_empty() {
        "sketch.ckpt"
    } else {
        &opts.out
    };
    std::fs::write(path, &bytes).map_err(|e| format!("write {path}: {e}"))?;
    writeln!(
        out,
        "{} checkpoint: {} items -> estimate {:.0}, {} sketch bits, {} bytes -> {}",
        opts.sketch,
        lines,
        estimate,
        bits,
        bytes.len(),
        path
    )
    .map_err(io_err)?;
    Ok(())
}

fn restore_cmd(opts: &Options, out: &mut impl Write) -> Result<(), String> {
    fn describe<T: DistinctCounter + Checkpoint>(bytes: &[u8]) -> Result<(f64, usize), String> {
        let sketch = T::restore(bytes).map_err(|e| e.to_string())?;
        Ok((sketch.estimate(), sketch.memory_bits()))
    }

    let [path] = opts.paths.as_slice() else {
        return Err("restore needs exactly one checkpoint file".into());
    };
    let bytes = std::fs::read(path).map_err(|e| format!("read {path}: {e}"))?;
    let (version, kind) = peek_kind(&bytes).map_err(|e| e.to_string())?;
    let (estimate, bits) = match kind {
        CounterKind::SBitmap => describe::<SBitmap>(&bytes)?,
        CounterKind::LinearCounting => describe::<LinearCounting>(&bytes)?,
        CounterKind::VirtualBitmap => describe::<VirtualBitmap>(&bytes)?,
        CounterKind::MrBitmap => describe::<MrBitmap>(&bytes)?,
        CounterKind::FmSketch => describe::<FmSketch>(&bytes)?,
        CounterKind::LogLog => describe::<LogLog>(&bytes)?,
        CounterKind::HyperLogLog => describe::<HyperLogLog>(&bytes)?,
        CounterKind::KMinValues => describe::<KMinValues>(&bytes)?,
        CounterKind::SketchFleet => {
            let fleet: sbitmap_core::SketchFleet =
                Checkpoint::restore(&bytes).map_err(|e| e.to_string())?;
            writeln!(
                out,
                "{path}: v{version} sketch-fleet, {} keys, {} sketch bits, {} bytes",
                fleet.len(),
                fleet.memory_bits(),
                bytes.len()
            )
            .map_err(io_err)?;
            return Ok(());
        }
        CounterKind::WindowedFleet => {
            let fleet: sbitmap_core::WindowedFleet =
                Checkpoint::restore(&bytes).map_err(|e| e.to_string())?;
            writeln!(
                out,
                "{path}: v{version} windowed-fleet, {} keys over {} live of {} epochs \
                 (open epoch {}), {} sketch bits, {} bytes",
                fleet.len(),
                fleet.live_epochs(),
                fleet.window_epochs(),
                fleet.current_epoch(),
                fleet.memory_bits(),
                bytes.len()
            )
            .map_err(io_err)?;
            return Ok(());
        }
        CounterKind::FleetDelta => {
            let frame = FleetDeltaFrame::decode(&bytes).map_err(|e| e.to_string())?;
            writeln!(
                out,
                "{path}: v{version} fleet-delta, epoch {} round {}{}, {} records, {} bytes",
                frame.epoch,
                frame.round,
                if frame.is_baseline() {
                    " (baseline reset)"
                } else {
                    ""
                },
                frame.records.len(),
                bytes.len()
            )
            .map_err(io_err)?;
            return Ok(());
        }
    };
    writeln!(
        out,
        "{path}: v{version} {kind} ({}), estimate {estimate:.0}, {bits} sketch bits, {} bytes",
        if kind.is_mergeable() {
            "mergeable"
        } else {
            "not mergeable"
        },
        bytes.len()
    )
    .map_err(io_err)?;
    Ok(())
}

fn merge_cmd(opts: &Options, out: &mut impl Write) -> Result<(), String> {
    fn merge_files<T: DistinctCounter + MergeableCounter + Checkpoint>(
        opts: &Options,
        files: &[(String, Vec<u8>)],
        out: &mut impl Write,
    ) -> Result<(), String> {
        let mut merged: Option<T> = None;
        for (path, bytes) in files {
            let sketch = T::restore(bytes).map_err(|e| format!("{path}: {e}"))?;
            writeln!(out, "{path}: estimate {:.0}", sketch.estimate()).map_err(io_err)?;
            merged = Some(match merged.take() {
                None => sketch,
                Some(mut acc) => {
                    acc.merge_from(&sketch)
                        .map_err(|e| format!("{path}: {e}"))?;
                    acc
                }
            });
        }
        let merged = merged.expect("at least two files");
        writeln!(
            out,
            "merged ({} checkpoints): estimate {:.0}",
            files.len(),
            merged.estimate()
        )
        .map_err(io_err)?;
        if !opts.out.is_empty() {
            let bytes = merged.checkpoint();
            std::fs::write(&opts.out, &bytes).map_err(|e| format!("write {}: {e}", opts.out))?;
            writeln!(out, "wrote merged checkpoint to {}", opts.out).map_err(io_err)?;
        }
        Ok(())
    }

    if opts.paths.len() < 2 {
        return Err("merge needs at least two checkpoint files".into());
    }
    let mut files = Vec::with_capacity(opts.paths.len());
    for path in &opts.paths {
        let bytes = std::fs::read(path).map_err(|e| format!("read {path}: {e}"))?;
        files.push((path.clone(), bytes));
    }
    let (_, kind) = peek_kind(&files[0].1).map_err(|e| format!("{}: {e}", files[0].0))?;
    for (path, bytes) in &files[1..] {
        let (_, k) = peek_kind(bytes).map_err(|e| format!("{path}: {e}"))?;
        if k != kind {
            return Err(format!(
                "cannot merge a {k} checkpoint ({path}) into a {kind} merge"
            ));
        }
    }
    match kind {
        CounterKind::LinearCounting => merge_files::<LinearCounting>(opts, &files, out),
        CounterKind::VirtualBitmap => merge_files::<VirtualBitmap>(opts, &files, out),
        CounterKind::MrBitmap => merge_files::<MrBitmap>(opts, &files, out),
        CounterKind::FmSketch => merge_files::<FmSketch>(opts, &files, out),
        CounterKind::LogLog => merge_files::<LogLog>(opts, &files, out),
        CounterKind::HyperLogLog => merge_files::<HyperLogLog>(opts, &files, out),
        CounterKind::KMinValues => merge_files::<KMinValues>(opts, &files, out),
        CounterKind::SBitmap
        | CounterKind::SketchFleet
        | CounterKind::WindowedFleet
        | CounterKind::FleetDelta => Err(format!(
            "{kind} checkpoints are not mergeable (the paper's §3 trade-off): \
             whether an item was sampled depends on the sketch-local fill at \
             arrival time. Aggregate per-link *estimates* instead — see \
             `sbitmap collect`."
        )),
    }
}

fn collect_cmd(opts: &Options, out: &mut impl Write) -> Result<(), String> {
    let cfg = PipelineConfig {
        links: opts.links.max(1),
        shards: opts.shards.max(1),
        seed: opts.seed,
        ..PipelineConfig::default()
    };
    writeln!(
        out,
        "collect: {} links over {} node shards (N = {}, m = {} bits/link, seed {})",
        cfg.links, cfg.shards, cfg.n_max, cfg.m_bits, cfg.seed
    )
    .map_err(io_err)?;
    let summary = run_pipeline(&cfg)?;
    writeln!(
        out,
        "received {} checkpoints, {} bytes shipped",
        summary.checkpoints, summary.bytes_shipped
    )
    .map_err(io_err)?;
    writeln!(
        out,
        "per-link estimates: mean |rel err| = {:.2}%",
        summary.mean_abs_rel_err * 100.0
    )
    .map_err(io_err)?;
    writeln!(out, "\n  quantile   est. flows/link").map_err(io_err)?;
    for &(p, v) in &summary.estimate_quantiles {
        writeln!(out, "  {:>7.0}%   {v:>15.0}", p * 100.0).map_err(io_err)?;
    }
    writeln!(
        out,
        "\nbackbone union (merged hyperloglog): {:.0} distinct flows (true total {})",
        summary.union_estimate, summary.total_flows
    )
    .map_err(io_err)?;
    Ok(())
}

/// The windowed pipeline shape shared by `window`, `serve` and `agent`:
/// flags override the paper's §7.2 defaults, so a served collector, the
/// agent shards feeding it and the in-process `window` reference all
/// agree on the sketch configuration (and hence on the handshake's
/// config echo) when given the same flags.
fn windowed_cfg(opts: &Options) -> WindowedPipelineConfig {
    WindowedPipelineConfig {
        links: opts.links.max(1),
        shards: opts.shards.max(1),
        window: opts.window.max(1),
        epochs: opts.epochs.max(1),
        rounds: opts.rounds.max(1),
        seed: opts.seed,
        ..WindowedPipelineConfig::default()
    }
}

fn window_cmd(opts: &Options, out: &mut impl Write) -> Result<(), String> {
    let cfg = windowed_cfg(opts);
    writeln!(
        out,
        "window: {} links over {} node shards, {}-epoch window, {} epochs \
         (N = {}, m = {} bits/link/epoch, seed {})",
        cfg.links, cfg.shards, cfg.window, cfg.epochs, cfg.n_max, cfg.m_bits, cfg.seed
    )
    .map_err(io_err)?;
    let summary = run_windowed_pipeline(&cfg)?;
    writeln!(
        out,
        "received {} epoch checkpoints, {} bytes shipped",
        summary.checkpoints, summary.bytes_shipped
    )
    .map_err(io_err)?;
    writeln!(
        out,
        "sliding window: last {} epochs, per-link estimates: mean |rel err| = {:.2}%",
        summary.live_epochs,
        summary.mean_abs_rel_err * 100.0
    )
    .map_err(io_err)?;
    writeln!(out, "\n  quantile   est. flows/link/window").map_err(io_err)?;
    for &(p, v) in &summary.estimate_quantiles {
        writeln!(out, "  {:>7.0}%   {v:>21.0}", p * 100.0).map_err(io_err)?;
    }
    Ok(())
}

fn serve_cmd(opts: &Options, input: &mut impl BufRead, out: &mut impl Write) -> Result<(), String> {
    let pcfg = windowed_cfg(opts);
    let cfg = DaemonConfig {
        ingest_addr: opts.listen.clone(),
        query_addr: opts.query_listen.clone(),
        n_max: pcfg.n_max,
        m_bits: pcfg.m_bits,
        seed: pcfg.seed,
        window: pcfg.window,
        credits: opts.credits.max(1),
        read_deadline: Duration::from_millis(opts.deadline_ms.max(1)),
        checkpoint_path: (!opts.out.is_empty()).then(|| PathBuf::from(&opts.out)),
        data_dir: (!opts.data_dir.is_empty()).then(|| PathBuf::from(&opts.data_dir)),
        snapshot_every: opts.snapshot_every,
        standby_of: (!opts.standby_of.is_empty()).then(|| opts.standby_of.clone()),
        initial_term: opts.initial_term,
        ..DaemonConfig::default()
    };
    let daemon = Daemon::start(cfg)?;
    writeln!(
        out,
        "sbitmapd: ingest on {}, query on {} (N = {}, m = {} bits/link/epoch, \
         {}-epoch window, seed {}, {} credits)",
        daemon.ingest_addr(),
        daemon.query_addr(),
        pcfg.n_max,
        pcfg.m_bits,
        pcfg.window,
        pcfg.seed,
        opts.credits.max(1)
    )
    .map_err(io_err)?;
    if opts.standby_of.is_empty() {
        writeln!(out, "role: primary (term {})", daemon.term()).map_err(io_err)?;
    } else {
        writeln!(
            out,
            "role: standby following {} (term {}) — ingest answers NotPrimary \
             until `query promote`",
            opts.standby_of,
            daemon.term()
        )
        .map_err(io_err)?;
    }
    if !opts.data_dir.is_empty() {
        writeln!(
            out,
            "durable: journal + snapshots in {} ({})",
            opts.data_dir,
            if opts.snapshot_every == 0 {
                "journal only, no periodic snapshots".to_string()
            } else {
                format!("snapshot every {} frames", opts.snapshot_every)
            }
        )
        .map_err(io_err)?;
        // Ingest handshakes answer `Recovering` until the replay is
        // done; tell the operator when the ring is actually live.
        if daemon.is_recovering() {
            writeln!(out, "recovering: replaying the journal...").map_err(io_err)?;
            out.flush().map_err(io_err)?;
            while daemon.is_recovering() {
                std::thread::sleep(Duration::from_millis(20));
            }
            writeln!(out, "recovery complete, accepting agents").map_err(io_err)?;
        }
    }
    out.flush().map_err(io_err)?;
    // Operator control: a `drain` line stops the daemon; EOF leaves it
    // serving until a remote `query drain` flips the flag.
    let mut line = String::new();
    loop {
        line.clear();
        if input.read_line(&mut line).map_err(io_err)? == 0 {
            break;
        }
        if line.trim() == "drain" {
            daemon.drain();
            break;
        }
        writeln!(out, "unknown control line (only `drain` is understood)").map_err(io_err)?;
        out.flush().map_err(io_err)?;
    }
    while !daemon.is_draining() {
        std::thread::sleep(Duration::from_millis(20));
    }
    let report = daemon.join()?;
    writeln!(
        out,
        "drained at epoch {}: {} keys, {} frames absorbed ({} duplicates, {} expired) \
         over {} connections",
        report.final_epoch,
        report.estimates.len(),
        report.frames_absorbed,
        report.duplicates,
        report.expired,
        report.connections
    )
    .map_err(io_err)?;
    writeln!(
        out,
        "{} bad frames, {} desyncs, {} handshake rejects, {} backpressure stalls, \
         {} busy sheds, {} queries",
        report.bad_frames,
        report.desyncs,
        report.handshake_rejects,
        report.backpressure_events,
        report.busy_rejections,
        report.queries
    )
    .map_err(io_err)?;
    if !opts.data_dir.is_empty() {
        writeln!(
            out,
            "journal: {} records appended, {} snapshots; startup recovery replayed \
             {} records ({} skipped)",
            report.journal_records,
            report.snapshots,
            report.replayed_records,
            report.replay_skipped
        )
        .map_err(io_err)?;
    }
    writeln!(
        out,
        "{} sketch bytes on the wire, {} baseline resyncs served",
        report.bytes_on_wire, report.missing_baselines
    )
    .map_err(io_err)?;
    writeln!(
        out,
        "replication: term {}, {} records replicated, {} standby drops, \
         {} NotPrimary refusals, {} handler panics survived",
        report.term,
        report.replicated_frames,
        report.replica_drops,
        report.not_primary_rejects,
        report.handler_panics
    )
    .map_err(io_err)?;
    if !opts.out.is_empty() {
        writeln!(
            out,
            "wrote final ring checkpoint ({} bytes) to {}",
            report.final_checkpoint.len(),
            opts.out
        )
        .map_err(io_err)?;
    }
    Ok(())
}

/// Read-only inspection of a `serve --data-dir` directory: what a
/// restart would recover, and what a crash left behind. Never starts a
/// daemon and never writes — safe to run against a live collector's
/// directory (it may observe a segment mid-rotation, nothing worse).
fn recover_cmd(opts: &Options, out: &mut impl Write) -> Result<(), String> {
    let [dir] = opts.paths.as_slice() else {
        return Err("recover needs exactly one data directory".into());
    };
    let dir = std::path::Path::new(dir);
    if !dir.is_dir() {
        return Err(format!("{} is not a directory", dir.display()));
    }
    writeln!(out, "recover: inspecting {}", dir.display()).map_err(io_err)?;

    let snapshot = journal::read_snapshot(dir).map_err(|e| e.to_string())?;
    match &snapshot {
        Some(bytes) => {
            let ring: sbitmap_core::WindowedFleet =
                Checkpoint::restore(bytes).map_err(|e| format!("snapshot: {e}"))?;
            writeln!(
                out,
                "snapshot: {} bytes, {} keys over {} live of {} epochs (open epoch {})",
                bytes.len(),
                ring.len(),
                ring.live_epochs(),
                ring.window_epochs(),
                ring.current_epoch()
            )
            .map_err(io_err)?;
        }
        None => writeln!(out, "snapshot: none").map_err(io_err)?,
    }

    // Segments oldest first. A torn tail inside a segment ends its
    // replayable prefix; an unreadable header is fatal except on the
    // newest segment, where it is the normal residue of a crash during
    // rotation (recovery skips it the same way).
    let segments = journal::list_segments(dir).map_err(|e| e.to_string())?;
    let mut records = 0usize;
    let mut torn_bytes = 0usize;
    let mut config: Option<JournalConfig> = None;
    let newest = segments.len().saturating_sub(1);
    for (i, (seq, path)) in segments.iter().enumerate() {
        match journal::read_segment(path) {
            Ok(scan) => {
                let span = match (
                    scan.records.iter().map(|r| r.epoch).min(),
                    scan.records.iter().map(|r| r.epoch).max(),
                ) {
                    (Some(lo), Some(hi)) => format!("epochs {lo}..={hi}"),
                    _ => "empty".to_string(),
                };
                let torn = if scan.trailing_discarded > 0 {
                    format!(", torn tail: {} bytes discarded", scan.trailing_discarded)
                } else {
                    String::new()
                };
                writeln!(
                    out,
                    "segment {seq:016x}: {} records ({span}){torn}",
                    scan.records.len()
                )
                .map_err(io_err)?;
                records += scan.records.len();
                torn_bytes += scan.trailing_discarded;
                if let Some(prev) = &config {
                    if *prev != scan.config {
                        return Err(format!(
                            "segment {seq:016x} was written under a different \
                             configuration than its predecessors — recovery would refuse \
                             this directory"
                        ));
                    }
                }
                config = Some(scan.config);
            }
            Err(e) if i == newest => {
                writeln!(
                    out,
                    "segment {seq:016x}: unreadable header ({e}) — crash during \
                     rotation; recovery skips it"
                )
                .map_err(io_err)?;
            }
            Err(e) => return Err(format!("segment {seq:016x}: {e}")),
        }
    }
    if let Some(cfg) = &config {
        writeln!(
            out,
            "journal config: N = {}, m = {} bits, sampling bits {}, seed {}, window {}",
            cfg.n_max, cfg.m, cfg.sampling_bits, cfg.seed, cfg.window
        )
        .map_err(io_err)?;
    }
    writeln!(
        out,
        "total: {} segments, {} replayable records, {} torn bytes{}",
        segments.len(),
        records,
        torn_bytes,
        if snapshot.is_none() && segments.is_empty() {
            " (nothing to recover)"
        } else {
            ""
        }
    )
    .map_err(io_err)?;
    Ok(())
}

fn agent_cmd(opts: &Options, out: &mut impl Write) -> Result<(), String> {
    // The failover list is `--connect` first (when given), then every
    // `--peers` entry not already present, in order.
    let mut targets: Vec<String> = Vec::new();
    if !opts.connect.is_empty() {
        targets.push(opts.connect.clone());
    }
    for p in &opts.peers {
        if !targets.contains(p) {
            targets.push(p.clone());
        }
    }
    if targets.is_empty() {
        return Err("agent needs --connect HOST:PORT (and/or --peers A:P,B:P)".into());
    }
    let pcfg = windowed_cfg(opts);
    if opts.shard >= pcfg.shards {
        return Err(format!(
            "--shard {} out of range for --shards {}",
            opts.shard, pcfg.shards
        ));
    }
    let backlog = DeltaFrameSource::new(&pcfg, opts.shard)?.collect_epochs();
    let frame_count: usize = backlog.iter().map(|e| e.deltas.len()).sum();
    let schedule = RateSchedule::from_memory(pcfg.n_max, pcfg.m_bits).map_err(|e| e.to_string())?;
    let echo = ConfigEcho {
        n_max: pcfg.n_max,
        m: pcfg.m_bits as u64,
        sampling_bits: schedule.split().sampling_bits(),
        seed: pcfg.seed,
        window: pcfg.window as u64,
        term: 0,
    };
    let agent_id = opts.agent_id.unwrap_or(opts.shard as u64 + 1);
    let acfg = AgentConfig::new(agent_id, echo);
    let read_deadline = Duration::from_millis(opts.deadline_ms.max(1));
    writeln!(
        out,
        "agent {agent_id}: shard {} of {} shipping {} epochs as {} v3 delta frames to {} \
         (full-frame fallback for v2 collectors)",
        opts.shard,
        pcfg.shards,
        backlog.len(),
        frame_count,
        targets.join(" -> ")
    )
    .map_err(io_err)?;
    out.flush().map_err(io_err)?;
    let report = if targets.len() > 1 {
        run_agent_rounds_failover(
            &acfg,
            backlog,
            &targets,
            Duration::from_secs(2),
            read_deadline,
        )?
    } else {
        let addr = targets[0].clone();
        run_agent_rounds(&acfg, backlog, |_attempt| {
            let stream = TcpStream::connect(&*addr)?;
            stream.set_nodelay(true)?;
            stream.set_read_timeout(Some(read_deadline))?;
            stream.set_write_timeout(Some(Duration::from_secs(2)))?;
            Ok(stream)
        })?
    };
    writeln!(
        out,
        "acked {} of {} frames sent ({} bytes) over {} connections ({} duplicates, \
         {} retransmits, {} baseline resyncs, {} error frames seen)",
        report.frames_acked,
        report.frames_sent,
        report.bytes_on_wire,
        report.connections,
        report.duplicates,
        report.retransmits,
        report.baseline_resyncs,
        report.error_frames_seen
    )
    .map_err(io_err)?;
    if targets.len() > 1 {
        writeln!(
            out,
            "{} failover rotations, {} stale-term acks discarded",
            report.failovers, report.stale_acks
        )
        .map_err(io_err)?;
    }
    Ok(())
}

fn query_cmd(opts: &Options, out: &mut impl Write) -> Result<(), String> {
    let [what] = opts.paths.as_slice() else {
        return Err("query needs exactly one request kind: \
             estimate | fill | top | summary | status | promote | drain"
            .into());
    };
    let need_key = || opts.key.ok_or(format!("query {what} needs --key K"));
    let request = match what.as_str() {
        "estimate" => QueryRequest::Estimate(need_key()?),
        "fill" => QueryRequest::Fill(need_key()?),
        "top" => QueryRequest::TopK(opts.top.max(1) as u64),
        "summary" => QueryRequest::Summary,
        "status" => QueryRequest::Status,
        "promote" => QueryRequest::Promote,
        "drain" => QueryRequest::Drain,
        other => {
            return Err(format!(
                "unknown query kind `{other}` \
                 (estimate | fill | top | summary | status | promote | drain)"
            ))
        }
    };
    if opts.connect.is_empty() {
        return Err("query needs --connect HOST:PORT".into());
    }
    let stream =
        TcpStream::connect(&opts.connect).map_err(|e| format!("connect {}: {e}", opts.connect))?;
    stream.set_nodelay(true).map_err(io_err)?;
    stream
        .set_read_timeout(Some(Duration::from_millis(opts.deadline_ms.max(1))))
        .map_err(io_err)?;
    stream
        .set_write_timeout(Some(Duration::from_secs(2)))
        .map_err(io_err)?;
    let reply = query_once(stream, &request, Duration::from_secs(5))?;
    let key = opts.key.unwrap_or_default();
    match reply {
        Message::Reply(QueryReply::Estimate(Some(e))) => {
            writeln!(
                out,
                "key {key}: estimate {e:.0} distinct flows in the window"
            )
            .map_err(io_err)?;
        }
        Message::Reply(QueryReply::Estimate(None) | QueryReply::Fill(None)) => {
            writeln!(out, "key {key}: not tracked").map_err(io_err)?;
        }
        Message::Reply(QueryReply::Fill(Some(f))) => {
            writeln!(out, "key {key}: window fill {f} bits").map_err(io_err)?;
        }
        Message::Reply(QueryReply::TopK(rows)) => {
            writeln!(out, "\n    key   est. flows/window").map_err(io_err)?;
            for (k, e) in rows {
                writeln!(out, "  {k:>5}   {e:>17.0}").map_err(io_err)?;
            }
        }
        Message::Reply(QueryReply::Summary { keys, quantiles }) => {
            writeln!(out, "{keys} tracked keys").map_err(io_err)?;
            // The same rows `sbitmap window` prints, so a loopback
            // deployment can be diffed against the in-process reference.
            writeln!(out, "\n  quantile   est. flows/link/window").map_err(io_err)?;
            for (p, v) in quantiles {
                writeln!(out, "  {:>7.0}%   {v:>21.0}", p * 100.0).map_err(io_err)?;
            }
        }
        Message::Reply(QueryReply::Status {
            role,
            term,
            journal_seq,
            absorbed,
            shed,
            replicated,
            peers,
        }) => {
            writeln!(
                out,
                "role {role:?}, term {term}, journal segment {journal_seq}, \
                 {absorbed} frames absorbed, {shed} shed, \
                 {replicated} records replicated, {peers} standby(s) attached"
            )
            .map_err(io_err)?;
        }
        Message::Reply(QueryReply::Promoted { term }) => {
            writeln!(out, "promoted: now the acting primary in term {term}").map_err(io_err)?;
        }
        Message::Reply(QueryReply::Draining) => {
            writeln!(out, "collector acknowledged the drain").map_err(io_err)?;
        }
        Message::Error { code, detail, .. } => {
            return Err(format!("collector error ({code:?}): {detail}"));
        }
        other => return Err(format!("unexpected reply: {other:?}")),
    }
    Ok(())
}

fn bench_daemon(opts: &Options, out: &mut impl Write) -> Result<(), String> {
    let cfg = sbitmap_bench::daemon::DaemonBenchConfig {
        links: opts.links.max(1),
        shards: opts.shards.max(1),
        window: opts.window.max(1),
        epochs: opts.epochs.max(1),
        rounds: opts.rounds.max(1),
        budget_ms: opts.budget_ms.max(1),
        seed: opts.seed,
    };
    writeln!(
        out,
        "daemon bench: {} links over {} agents, {}-epoch window, {} epochs, {} ms/case",
        cfg.links, cfg.shards, cfg.window, cfg.epochs, cfg.budget_ms
    )
    .map_err(io_err)?;
    let run = sbitmap_bench::daemon::run(&cfg);
    for m in &run.results {
        writeln!(out, "{}", m.row()).map_err(io_err)?;
    }
    let overhead = sbitmap_bench::daemon::storm_overhead(&run.results);
    writeln!(out, "reconnect storm vs clean loopback: {overhead:.2}x").map_err(io_err)?;
    let journal_tax = sbitmap_bench::daemon::journal_overhead(&run.results);
    writeln!(out, "journaled ingest vs clean loopback: {journal_tax:.2}x").map_err(io_err)?;
    let replication_tax = sbitmap_bench::daemon::replication_overhead(&run.results);
    writeln!(
        out,
        "replicated loopback vs clean loopback: {replication_tax:.2}x"
    )
    .map_err(io_err)?;
    let json = sbitmap_bench::daemon::report_json(&cfg, &run);
    let path = if opts.out.is_empty() {
        "BENCH_daemon.json"
    } else {
        &opts.out
    };
    std::fs::write(path, &json).map_err(|e| format!("write {path}: {e}"))?;
    writeln!(out, "wrote {path}").map_err(io_err)?;
    if let Some(max) = opts.assert_max_journal_overhead {
        if journal_tax > max {
            return Err(format!(
                "regression: journaled loopback ingest costs {journal_tax:.3}x the \
                 clean lane, above the allowed {max}x"
            ));
        }
        writeln!(out, "journal gate passed: {journal_tax:.2}x <= {max}x").map_err(io_err)?;
    }
    if let Some(max) = opts.assert_max_replication_overhead {
        if replication_tax > max {
            return Err(format!(
                "regression: replicated loopback ingest costs {replication_tax:.3}x the \
                 clean lane, above the allowed {max}x"
            ));
        }
        writeln!(
            out,
            "replication gate passed: {replication_tax:.2}x <= {max}x"
        )
        .map_err(io_err)?;
    }
    Ok(())
}

fn bench_window(opts: &Options, out: &mut impl Write) -> Result<(), String> {
    let cfg = sbitmap_bench::window::WindowConfig {
        links: opts.links.max(1),
        max_pairs: opts.pairs.max(1),
        budget_ms: opts.budget_ms.max(1),
        seed: opts.seed,
        ..sbitmap_bench::window::WindowConfig::default()
    };
    writeln!(
        out,
        "window bench: {} links, ≤{} pairs, {} ms/case, {} rotations, W ∈ {:?}",
        cfg.links,
        cfg.max_pairs,
        cfg.budget_ms,
        cfg.rotations,
        sbitmap_bench::window::WINDOW_SPANS
    )
    .map_err(io_err)?;
    let run = sbitmap_bench::window::run(&cfg);
    for m in &run.results {
        writeln!(out, "{}", m.row()).map_err(io_err)?;
    }
    let overhead = sbitmap_bench::window::w8_overhead(&run.results);
    writeln!(out, "w8 ingest vs plain arena: {overhead:.2}x").map_err(io_err)?;
    let speedup = sbitmap_bench::window::query_speedup(&run.results);
    writeln!(out, "fused query vs naive reference: {speedup:.2}x").map_err(io_err)?;
    let json = sbitmap_bench::window::report_json(&cfg, &run);
    let path = if opts.out.is_empty() {
        "BENCH_window.json"
    } else {
        &opts.out
    };
    std::fs::write(path, &json).map_err(|e| format!("write {path}: {e}"))?;
    writeln!(out, "wrote {path}").map_err(io_err)?;
    if let Some(max) = opts.assert_max_overhead {
        if overhead > max {
            return Err(format!(
                "regression: W=8 windowed ingest costs {overhead:.3}x the plain \
                 arena per item, above the allowed {max}x"
            ));
        }
        writeln!(out, "overhead gate passed: {overhead:.2}x <= {max}x").map_err(io_err)?;
    }
    if let Some(min) = opts.assert_min_query_speedup {
        if speedup < min {
            return Err(format!(
                "regression: the fused W=8 window query is only {speedup:.3}x the \
                 naive three-pass reference, below the required {min}x"
            ));
        }
        writeln!(out, "query gate passed: {speedup:.2}x >= {min}x").map_err(io_err)?;
    }
    Ok(())
}

fn bench_collect(opts: &Options, out: &mut impl Write) -> Result<(), String> {
    let cfg = sbitmap_bench::collect::CollectConfig {
        links: opts.links.max(1),
        max_shards: opts.shards.max(1),
        budget_ms: opts.budget_ms.max(1),
        seed: opts.seed,
        window: opts.window.max(2),
        epochs: opts.epochs.max(1),
        rounds: opts.rounds.max(1),
    };
    writeln!(
        out,
        "collect bench: {} links, 1..={} shards, {} ms/case, {} rounds/epoch",
        cfg.links, cfg.max_shards, cfg.budget_ms, cfg.rounds
    )
    .map_err(io_err)?;
    let run = sbitmap_bench::collect::run(&cfg);
    for m in &run.results {
        writeln!(out, "{}", m.row()).map_err(io_err)?;
    }
    let reduction = run.wire.reduction;
    writeln!(
        out,
        "wire: {} frames, {} bytes full vs {} bytes v3 ({reduction:.2}x reduction)",
        run.wire.frames, run.wire.bytes_full, run.wire.bytes_v3
    )
    .map_err(io_err)?;
    let json = sbitmap_bench::collect::report_json(&cfg, &run);
    let path = if opts.out.is_empty() {
        "BENCH_collect.json"
    } else {
        &opts.out
    };
    std::fs::write(path, &json).map_err(|e| format!("write {path}: {e}"))?;
    writeln!(out, "wrote {path}").map_err(io_err)?;
    if let Some(min) = opts.assert_min_wire_reduction {
        if reduction < min {
            return Err(format!(
                "regression: the v3 delta encoding only shrinks the windowed \
                 wire by {reduction:.3}x, below the required {min}x"
            ));
        }
        writeln!(out, "wire gate passed: {reduction:.2}x >= {min}x").map_err(io_err)?;
    }
    Ok(())
}

fn bench_fleet(opts: &Options, out: &mut impl Write) -> Result<(), String> {
    let generator = sbitmap_bench::fleet::FleetGenerator::parse(&opts.generator)
        .ok_or_else(|| format!("unknown generator `{}`", opts.generator))?;
    let cfg = sbitmap_bench::fleet::FleetConfig {
        links: opts.links.max(1),
        max_pairs: opts.pairs.max(1),
        budget_ms: opts.budget_ms.max(1),
        max_shards: opts.shards.max(1),
        seed: opts.seed,
        generator,
        zipf_keys: opts.keys.max(1),
    };
    writeln!(
        out,
        "fleet bench [{}]: {} links, ≤{} pairs, {} zipf keys, {} ms/case, 1..={} shards",
        generator.name(),
        cfg.links,
        cfg.max_pairs,
        cfg.zipf_keys,
        cfg.budget_ms,
        cfg.max_shards
    )
    .map_err(io_err)?;
    let run = sbitmap_bench::fleet::run(&cfg);
    for m in &run.results {
        writeln!(out, "{}", m.row()).map_err(io_err)?;
    }
    let speedup = sbitmap_bench::fleet::arena_speedup(&run.results);
    let rss_ratio = sbitmap_bench::fleet::rss_ratio(&run);
    let slowdown = sbitmap_bench::fleet::zipf_slowdown(&run.results);
    if generator.name() != "zipf" {
        writeln!(out, "arena vs legacy batched: {speedup:.2}x").map_err(io_err)?;
    }
    if generator.name() != "backbone" {
        writeln!(
            out,
            "zipf sparse vs dense: {rss_ratio:.3}x peak RSS ({} vs {} bytes), \
             {slowdown:.2}x ns/item",
            run.sparse_rss_bytes, run.dense_rss_bytes
        )
        .map_err(io_err)?;
    }
    let json = sbitmap_bench::fleet::report_json(&cfg, &run);
    let path = if opts.out.is_empty() {
        "BENCH_fleet.json"
    } else {
        &opts.out
    };
    std::fs::write(path, &json).map_err(|e| format!("write {path}: {e}"))?;
    writeln!(out, "wrote {path}").map_err(io_err)?;
    if let Some(min) = opts.assert_min_speedup {
        if speedup < min {
            return Err(format!(
                "regression: arena batched ingest is {speedup:.3}x the legacy \
                 batched path, below the required {min}x"
            ));
        }
        writeln!(out, "speedup gate passed: {speedup:.2}x >= {min}x").map_err(io_err)?;
    }
    if let Some(max) = opts.assert_max_rss_ratio {
        if rss_ratio <= 0.0 || rss_ratio > max {
            return Err(format!(
                "regression: sparse fleet peak RSS is {rss_ratio:.4}x the dense \
                 arena's on the zipf workload, outside (0, {max}]"
            ));
        }
        writeln!(out, "rss gate passed: {rss_ratio:.4}x <= {max}x").map_err(io_err)?;
    }
    if let Some(max) = opts.assert_max_slowdown {
        if slowdown <= 0.0 || slowdown > max {
            return Err(format!(
                "regression: sparse zipf ingest costs {slowdown:.3}x the dense \
                 arena per item, outside (0, {max}]"
            ));
        }
        writeln!(out, "slowdown gate passed: {slowdown:.2}x <= {max}x").map_err(io_err)?;
    }
    Ok(())
}

fn bench_ingest(opts: &Options, out: &mut impl Write) -> Result<(), String> {
    let cfg = sbitmap_bench::ingest::IngestConfig {
        links: opts.links.max(1),
        max_pairs: opts.pairs.max(1),
        budget_ms: opts.budget_ms.max(1),
        max_threads: opts.threads.max(1),
        seed: opts.seed,
    };
    writeln!(
        out,
        "ingest bench: {} links, ≤{} pairs, {} ms/case, ≤{} threads",
        cfg.links, cfg.max_pairs, cfg.budget_ms, cfg.max_threads
    )
    .map_err(io_err)?;
    let results = sbitmap_bench::ingest::run(&cfg);
    for m in &results {
        writeln!(out, "{}", m.row()).map_err(io_err)?;
    }
    let json = sbitmap_bench::ingest::report_json(&cfg, &results);
    let out_path = if opts.out.is_empty() {
        "BENCH_ingest.json"
    } else {
        &opts.out
    };
    std::fs::write(out_path, &json).map_err(|e| format!("write {out_path}: {e}"))?;
    let scalar = results
        .iter()
        .find(|m| m.name == "backbone_fleet_scalar")
        .map(Measurement::items_per_sec)
        .unwrap_or(0.0);
    let batched = results
        .iter()
        .find(|m| m.name == "backbone_fleet_batched")
        .map(Measurement::items_per_sec)
        .unwrap_or(0.0);
    if scalar > 0.0 {
        writeln!(
            out,
            "batched vs scalar on backbone: {:.2}x",
            batched / scalar
        )
        .map_err(io_err)?;
    }
    writeln!(out, "wrote {out_path}").map_err(io_err)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(argv: &str, stdin: &str) -> Result<String, String> {
        let argv: Vec<String> = argv.split_whitespace().map(String::from).collect();
        let mut input = stdin.as_bytes();
        let mut out = Vec::new();
        dispatch(&argv, &mut input, &mut out)?;
        Ok(String::from_utf8(out).expect("utf8 output"))
    }

    #[test]
    fn count_small_exact_stream() {
        let out = run(
            "count --sketch exact --n-max 1000",
            "alice\nbob\nalice\ncarol\n",
        )
        .unwrap();
        assert!(out.starts_with("3 distinct"), "{out}");
    }

    #[test]
    fn count_with_sbitmap_is_close() {
        let stdin: String = (0..5000).map(|i| format!("user-{i}\nuser-{i}\n")).collect();
        let out = run("count --n-max 100k --error 0.03 --seed 7", &stdin).unwrap();
        let est: f64 = out.split_whitespace().next().unwrap().parse().unwrap();
        assert!((est / 5000.0 - 1.0).abs() < 0.15, "{out}");
    }

    #[test]
    fn plan_prints_all_methods() {
        let out = run("plan --n-max 1e6 --error 0.01", "").unwrap();
        for needle in ["S-bitmap", "HyperLogLog", "LogLog", "FM/PCSA", "b_max"] {
            assert!(out.contains(needle), "missing {needle} in {out}");
        }
    }

    #[test]
    fn compare_runs_every_sketch() {
        let stdin: String = (0..2000).map(|i| format!("flow-{i}\n")).collect();
        let out = run("compare --n-max 100k --memory-bits 4000 --seed 3", &stdin).unwrap();
        for name in ["s-bitmap", "hyperloglog", "mr-bitmap", "exact"] {
            assert!(out.contains(name), "missing {name} in {out}");
        }
    }

    #[test]
    fn simulate_reports_near_theory() {
        let out = run(
            "simulate --n-max 1m --memory-bits 8000 --n 100k --reps 600",
            "",
        )
        .unwrap();
        assert!(out.contains("theoretical RRMSE"), "{out}");
        // Parse simulated rrmse and compare loosely with 2.2% theory.
        let line = out.lines().nth(1).unwrap();
        let rrmse: f64 = line
            .split("RRMSE = ")
            .nth(1)
            .unwrap()
            .split('%')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!((1.4..3.4).contains(&rrmse), "simulated rrmse {rrmse}");
    }

    #[test]
    fn simulate_rejects_n_beyond_range() {
        assert!(run("simulate --n-max 1000 --memory-bits 500 --n 5000", "").is_err());
    }

    #[test]
    fn unknown_command_and_sketch_error() {
        assert!(run("bogus", "").is_err());
        assert!(run("count --sketch nope", "").is_err());
        assert!(run("count --hash nope", "a\n").is_err());
    }

    #[test]
    fn count_with_alternate_hash() {
        let stdin: String = (0..3000).map(|i| format!("k{i}\n")).collect();
        let out = run(
            "count --hash xxh64 --n-max 100k --error 0.03 --seed 5",
            &stdin,
        )
        .unwrap();
        let est: f64 = out.split_whitespace().next().unwrap().parse().unwrap();
        assert!((est / 3000.0 - 1.0).abs() < 0.2, "{out}");
    }

    #[test]
    fn bench_ingest_writes_report() {
        let path = std::env::temp_dir().join("sbitmap_test_bench_ingest.json");
        let argv = format!(
            "bench-ingest --links 4 --pairs 2k --budget-ms 2 --threads 2 --out {}",
            path.display()
        );
        let out = run(&argv, "").unwrap();
        assert!(out.contains("backbone_fleet_scalar"), "{out}");
        assert!(out.contains("worm_concurrent_t2"), "{out}");
        assert!(out.contains("batched vs scalar"), "{out}");
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"bench\": \"ingest\""));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bench_fleet_writes_report_and_gates_regressions() {
        let path = std::env::temp_dir().join(format!(
            "sbitmap_test_bench_fleet_{}.json",
            std::process::id()
        ));
        let argv = format!(
            "bench-fleet --links 4 --pairs 2k --budget-ms 2 --shards 2 \
             --assert-min-speedup 0.01 --out {}",
            path.display()
        );
        let out = run(&argv, "").unwrap();
        assert!(out.contains("backbone_fleet_arena"), "{out}");
        assert!(out.contains("backbone_fleet_parallel_t2"), "{out}");
        assert!(out.contains("arena vs legacy batched"), "{out}");
        assert!(out.contains("speedup gate passed"), "{out}");
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"bench\": \"fleet\""));
        assert!(json.contains("available_parallelism"));
        // An impossible gate must fail loudly.
        let argv = format!(
            "bench-fleet --links 4 --pairs 2k --budget-ms 2 --shards 1 \
             --assert-min-speedup 1e9 --out {}",
            path.display()
        );
        let err = run(&argv, "").unwrap_err();
        assert!(err.contains("regression"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bench_fleet_zipf_lanes_report_and_gate() {
        let path = std::env::temp_dir().join(format!(
            "sbitmap_test_bench_fleet_zipf_{}.json",
            std::process::id()
        ));
        let argv = format!(
            "bench-fleet --generator zipf --keys 3k --budget-ms 2 \
             --assert-max-slowdown 1e9 --out {}",
            path.display()
        );
        let out = run(&argv, "").unwrap();
        assert!(out.contains("zipf_fleet_sparse"), "{out}");
        assert!(out.contains("zipf_fleet_arena"), "{out}");
        assert!(out.contains("slowdown gate passed"), "{out}");
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"generator\": \"zipf\""));
        assert!(json.contains("\"rss_ratio\": "));
        assert!(json.contains("\"peak_rss_bytes\": "));
        // An impossible slowdown gate must fail loudly. (The RSS gate is
        // exercised by the CI smoke run in a fresh process — VmHWM deltas
        // are not attributable inside this shared test binary.)
        let argv = format!(
            "bench-fleet --generator zipf --keys 3k --budget-ms 2 \
             --assert-max-slowdown 1e-9 --out {}",
            path.display()
        );
        let err = run(&argv, "").unwrap_err();
        assert!(err.contains("regression"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn crlf_lines_are_trimmed() {
        let out = run("count --sketch exact", "a\r\nb\r\na\r\n").unwrap();
        assert!(out.starts_with("2 distinct"), "{out}");
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("sbitmap_cli_test_{name}_{}", std::process::id()))
    }

    #[test]
    fn checkpoint_restore_round_trip() {
        let path = tmp("ckpt_roundtrip");
        let stdin: String = (0..4_000).map(|i| format!("flow-{i}\n")).collect();
        let out = run(
            &format!(
                "checkpoint --n-max 100k --memory-bits 4000 --seed 5 --out {}",
                path.display()
            ),
            &stdin,
        )
        .unwrap();
        assert!(out.contains("s-bitmap checkpoint"), "{out}");
        let out = run(&format!("restore {}", path.display()), "").unwrap();
        assert!(out.contains("v2 s-bitmap (not mergeable)"), "{out}");
        let est: f64 = out
            .split("estimate ")
            .nth(1)
            .unwrap()
            .split(',')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!((est / 4_000.0 - 1.0).abs() < 0.2, "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn merge_unions_hll_checkpoints() {
        let a = tmp("merge_a");
        let b = tmp("merge_b");
        let merged = tmp("merge_out");
        let stdin_a: String = (0..3_000).map(|i| format!("u{i}\n")).collect();
        let stdin_b: String = (2_000..6_000).map(|i| format!("u{i}\n")).collect();
        let flags = "--sketch hyperloglog --n-max 100k --memory-bits 20k --seed 9";
        run(
            &format!("checkpoint {flags} --out {}", a.display()),
            &stdin_a,
        )
        .unwrap();
        run(
            &format!("checkpoint {flags} --out {}", b.display()),
            &stdin_b,
        )
        .unwrap();
        let out = run(
            &format!(
                "merge {} {} --out {}",
                a.display(),
                b.display(),
                merged.display()
            ),
            "",
        )
        .unwrap();
        assert!(out.contains("merged (2 checkpoints)"), "{out}");
        let est: f64 = out
            .lines()
            .find(|l| l.starts_with("merged"))
            .unwrap()
            .split("estimate ")
            .nth(1)
            .unwrap()
            .parse()
            .unwrap();
        assert!((est / 6_000.0 - 1.0).abs() < 0.1, "union estimate {est}");
        // The merged checkpoint restores as a mergeable hyperloglog.
        let out = run(&format!("restore {}", merged.display()), "").unwrap();
        assert!(out.contains("hyperloglog (mergeable)"), "{out}");
        for p in [a, b, merged] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn merge_refuses_sbitmap_checkpoints() {
        let a = tmp("merge_sb_a");
        let b = tmp("merge_sb_b");
        let flags = "--n-max 10k --memory-bits 1200 --seed 2";
        run(&format!("checkpoint {flags} --out {}", a.display()), "x\n").unwrap();
        run(&format!("checkpoint {flags} --out {}", b.display()), "y\n").unwrap();
        let err = run(&format!("merge {} {}", a.display(), b.display()), "").unwrap_err();
        assert!(err.contains("not mergeable"), "{err}");
        assert!(err.contains("collect"), "{err}");
        for p in [a, b] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn merge_refuses_mixed_kinds() {
        let a = tmp("merge_mix_a");
        let b = tmp("merge_mix_b");
        run(
            &format!(
                "checkpoint --sketch hyperloglog --memory-bits 20k --out {}",
                a.display()
            ),
            "x\n",
        )
        .unwrap();
        run(
            &format!(
                "checkpoint --sketch kmv --memory-bits 20k --out {}",
                b.display()
            ),
            "x\n",
        )
        .unwrap();
        let err = run(&format!("merge {} {}", a.display(), b.display()), "").unwrap_err();
        assert!(err.contains("cannot merge"), "{err}");
        for p in [a, b] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn restore_rejects_corruption_and_missing_args() {
        let path = tmp("restore_bad");
        run(
            &format!(
                "checkpoint --memory-bits 1200 --n-max 10k --out {}",
                path.display()
            ),
            "a\n",
        )
        .unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[10] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let err = run(&format!("restore {}", path.display()), "").unwrap_err();
        assert!(err.contains("checksum"), "{err}");
        assert!(run("restore", "").is_err());
        assert!(run("merge", "").is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checkpoint_rejects_non_default_hash_and_unknown_sketch() {
        assert!(run("checkpoint --hash xxh64", "a\n").is_err());
        assert!(run("checkpoint --sketch exact", "a\n").is_err());
    }

    #[test]
    fn stray_positional_arguments_are_rejected() {
        // `count data.txt` must not silently ignore the file name and
        // block on stdin.
        let err = run("count data.txt", "a\n").unwrap_err();
        assert!(err.contains("unexpected argument `data.txt`"), "{err}");
        assert!(run("collect 5", "").is_err());
        assert!(run("bench-collect oops --budget-ms 1", "").is_err());
    }

    #[test]
    fn collect_runs_pipeline_and_prints_summary() {
        let out = run("collect --links 12 --shards 3 --seed 4", "").unwrap();
        assert!(out.contains("12 links over 3 node shards"), "{out}");
        assert!(out.contains("received 15 checkpoints"), "{out}");
        assert!(out.contains("backbone union"), "{out}");
        assert!(out.contains("quantile"), "{out}");
    }

    #[test]
    fn window_runs_pipeline_and_prints_summary() {
        let out = run(
            "window --links 9 --shards 3 --window 2 --epochs 4 --seed 4",
            "",
        )
        .unwrap();
        assert!(out.contains("9 links over 3 node shards"), "{out}");
        assert!(out.contains("received 12 epoch checkpoints"), "{out}");
        assert!(out.contains("last 2 epochs"), "{out}");
        assert!(out.contains("quantile"), "{out}");
    }

    #[test]
    fn bench_window_writes_report_and_gates_overhead() {
        let path = tmp("bench_window.json");
        let argv = format!(
            "bench-window --links 4 --pairs 2k --budget-ms 2 \
             --assert-max-overhead 1e9 --out {}",
            path.display()
        );
        let out = run(&argv, "").unwrap();
        assert!(out.contains("backbone_window_w8"), "{out}");
        assert!(out.contains("window_query_w8"), "{out}");
        assert!(out.contains("overhead gate passed"), "{out}");
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"bench\": \"window\""));
        assert!(json.contains("w8_vs_arena_overhead"));
        // An impossible gate must fail loudly.
        let argv = format!(
            "bench-window --links 4 --pairs 2k --budget-ms 2 \
             --assert-max-overhead 1e-9 --out {}",
            path.display()
        );
        let err = run(&argv, "").unwrap_err();
        assert!(err.contains("regression"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bench_window_gates_query_speedup_against_naive_lane() {
        let path = tmp("bench_window_query.json");
        let argv = format!(
            "bench-window --links 4 --pairs 2k --budget-ms 2 \
             --assert-min-query-speedup 1e-9 --out {}",
            path.display()
        );
        let out = run(&argv, "").unwrap();
        assert!(out.contains("window_query_naive_w8"), "{out}");
        assert!(out.contains("query gate passed"), "{out}");
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("query_fused_vs_naive_speedup"));
        assert!(json.contains("\"simd\": "));
        // An impossible gate must fail loudly.
        let argv = format!(
            "bench-window --links 4 --pairs 2k --budget-ms 2 \
             --assert-min-query-speedup 1e9 --out {}",
            path.display()
        );
        let err = run(&argv, "").unwrap_err();
        assert!(err.contains("regression"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn restore_describes_windowed_fleet_checkpoints() {
        use sbitmap_core::{Checkpoint, WindowedFleet};
        let path = tmp("windowed_ckpt");
        let mut fleet: WindowedFleet = WindowedFleet::new(10_000, 1_200, 3, 2).unwrap();
        fleet.insert_u64(5, 1);
        fleet.rotate();
        fleet.insert_u64(6, 2);
        std::fs::write(&path, fleet.checkpoint()).unwrap();
        let out = run(&format!("restore {}", path.display()), "").unwrap();
        assert!(out.contains("windowed-fleet"), "{out}");
        assert!(out.contains("2 keys over 2 live of 2 epochs"), "{out}");
        // Two windowed checkpoints refuse to merge (not mergeable).
        let b = tmp("windowed_ckpt_b");
        std::fs::copy(&path, &b).unwrap();
        let err = run(&format!("merge {} {}", path.display(), b.display()), "").unwrap_err();
        assert!(err.contains("not mergeable"), "{err}");
        for p in [path, b] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn serve_starts_and_drains_on_stdin_command() {
        let out = run(
            "serve --listen 127.0.0.1:0 --query-listen 127.0.0.1:0 \
             --links 6 --shards 2 --window 2 --epochs 2 --seed 3",
            "drain\n",
        )
        .unwrap();
        assert!(out.contains("sbitmapd: ingest on 127.0.0.1:"), "{out}");
        assert!(out.contains("drained at epoch 0: 0 keys"), "{out}");
    }

    #[test]
    fn agent_and_query_work_against_a_live_daemon() {
        // A daemon shaped exactly as `windowed_cfg` shapes `serve`, so
        // the CLI agent's config echo matches the handshake check.
        let pcfg = WindowedPipelineConfig {
            links: 6,
            shards: 2,
            window: 2,
            epochs: 3,
            seed: 5,
            ..WindowedPipelineConfig::default()
        };
        let daemon = Daemon::start(DaemonConfig {
            n_max: pcfg.n_max,
            m_bits: pcfg.m_bits,
            seed: pcfg.seed,
            window: pcfg.window,
            read_deadline: Duration::from_millis(10),
            ..DaemonConfig::default()
        })
        .unwrap();
        let ingest = daemon.ingest_addr();
        let query = daemon.query_addr();
        let flags = "--links 6 --shards 2 --window 2 --epochs 3 --rounds 2 --seed 5 \
                     --deadline-ms 20";
        for shard in 0..2 {
            let out = run(
                &format!("agent --connect {ingest} {flags} --shard {shard}"),
                "",
            )
            .unwrap();
            assert!(
                out.contains("shipping 3 epochs as 6 v3 delta frames"),
                "{out}"
            );
            assert!(out.contains("acked 6 of 6 frames sent"), "{out}");
        }
        let out = run(
            &format!("query summary --connect {query} --deadline-ms 20"),
            "",
        )
        .unwrap();
        assert!(out.contains("6 tracked keys"), "{out}");
        assert!(out.contains("quantile"), "{out}");
        let out = run(
            &format!("query estimate --connect {query} --key 0 --deadline-ms 20"),
            "",
        )
        .unwrap();
        assert!(out.contains("key 0: estimate"), "{out}");
        let out = run(
            &format!("query estimate --connect {query} --key 999 --deadline-ms 20"),
            "",
        )
        .unwrap();
        assert!(out.contains("key 999: not tracked"), "{out}");
        let out = run(
            &format!("query top --connect {query} --top 3 --deadline-ms 20"),
            "",
        )
        .unwrap();
        assert!(out.contains("est. flows/window"), "{out}");
        let out = run(
            &format!("query drain --connect {query} --deadline-ms 20"),
            "",
        )
        .unwrap();
        assert!(out.contains("acknowledged the drain"), "{out}");
        let report = daemon.join().unwrap();
        // The agents ran *sequentially*: shard 0 advanced the ring to
        // epoch 2 (window 2 keeps epochs {1, 2}), so shard 1's two
        // epoch-0 delta rounds arrived expired — acked, counted, and
        // irrelevant to the final window, exactly as the sliding window
        // defines. The other 10 of the 12 (shard, epoch, round) frames
        // absorbed.
        assert_eq!(report.frames_absorbed, 10);
        assert_eq!(report.expired, 2);
        assert_eq!(report.estimates.len(), 6);
    }

    #[test]
    fn durable_serve_journals_restores_and_recover_inspects() {
        let dir = tmp("durable_dir");
        let _ = std::fs::remove_dir_all(&dir);
        let pcfg = WindowedPipelineConfig {
            links: 6,
            shards: 2,
            window: 2,
            epochs: 3,
            seed: 5,
            ..WindowedPipelineConfig::default()
        };
        let daemon = Daemon::start(DaemonConfig {
            n_max: pcfg.n_max,
            m_bits: pcfg.m_bits,
            seed: pcfg.seed,
            window: pcfg.window,
            data_dir: Some(dir.clone()),
            snapshot_every: 4,
            read_deadline: Duration::from_millis(10),
            ..DaemonConfig::default()
        })
        .unwrap();
        let ingest = daemon.ingest_addr();
        let query = daemon.query_addr();
        let flags = "--links 6 --shards 2 --window 2 --epochs 3 --rounds 2 --seed 5 \
                     --deadline-ms 20";
        for shard in 0..2 {
            run(
                &format!("agent --connect {ingest} {flags} --shard {shard}"),
                "",
            )
            .unwrap();
        }
        run(
            &format!("query drain --connect {query} --deadline-ms 20"),
            "",
        )
        .unwrap();
        let report = daemon.join().unwrap();
        assert!(
            report.journal_records > 0,
            "acked frames must hit the journal"
        );

        // The inspection tool sees the post-drain state: a final
        // snapshot, no segments left to replay.
        let out = run(&format!("recover {}", dir.display()), "").unwrap();
        assert!(out.contains("snapshot: "), "{out}");
        assert!(
            out.contains("total: 0 segments, 0 replayable records"),
            "{out}"
        );

        // A restart on the same directory restores the ring from the
        // snapshot: the drained report still knows all 6 links.
        let out = run(
            &format!(
                "serve --listen 127.0.0.1:0 --query-listen 127.0.0.1:0 \
                 --links 6 --shards 2 --window 2 --seed 5 --data-dir {}",
                dir.display()
            ),
            "drain\n",
        )
        .unwrap();
        assert!(out.contains("durable: journal + snapshots in"), "{out}");
        assert!(out.contains("6 keys"), "{out}");
        assert!(out.contains("journal: 0 records appended"), "{out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recover_reports_segments_and_torn_tails() {
        use sbitmap_core::journal::{JournalRecord, JournalWriter};
        let dir = tmp("recover_torn");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let jcfg = JournalConfig {
            n_max: 10_000,
            m: 1_200,
            sampling_bits: 3,
            seed: 2,
            window: 2,
        };
        let rec = |source, epoch| JournalRecord {
            source,
            epoch,
            payload: vec![0xab; 64],
        };
        let mut w = JournalWriter::create(&dir, &jcfg, 0, 1, false).unwrap();
        w.append(&rec(1, 0)).unwrap();
        w.append(&rec(2, 1)).unwrap();
        // Half a record: the torn tail a crash mid-append leaves.
        let torn = journal::encode_record(&rec(3, 1));
        w.append_bytes(&torn[..torn.len() / 2]).unwrap();
        drop(w);
        let out = run(&format!("recover {}", dir.display()), "").unwrap();
        assert!(out.contains("snapshot: none"), "{out}");
        assert!(out.contains("2 records (epochs 0..=1)"), "{out}");
        assert!(out.contains("torn tail: "), "{out}");
        assert!(out.contains("journal config: N = 10000"), "{out}");
        assert!(
            out.contains("total: 1 segments, 2 replayable records"),
            "{out}"
        );
        let _ = std::fs::remove_dir_all(&dir);
        // Bad usage fires before any filesystem reads.
        assert!(run("recover", "").is_err());
        assert!(run("recover /definitely/not/a/dir", "").is_err());
    }

    #[test]
    fn agent_and_query_reject_bad_usage() {
        // Every rejection here must fire before any network I/O.
        let err = run("agent --links 4 --shards 2", "").unwrap_err();
        assert!(err.contains("--connect"), "{err}");
        let err = run("agent --connect 127.0.0.1:1 --shards 2 --shard 2", "").unwrap_err();
        assert!(err.contains("out of range"), "{err}");
        let err = run("query --connect 127.0.0.1:1", "").unwrap_err();
        assert!(err.contains("request kind"), "{err}");
        let err = run("query bogus --connect 127.0.0.1:1", "").unwrap_err();
        assert!(err.contains("unknown query kind"), "{err}");
        let err = run("query estimate --connect 127.0.0.1:1", "").unwrap_err();
        assert!(err.contains("--key"), "{err}");
        let err = run("query summary", "").unwrap_err();
        assert!(err.contains("--connect"), "{err}");
    }

    #[test]
    fn bench_daemon_writes_report() {
        let path = tmp("bench_daemon.json");
        let argv = format!(
            "bench-daemon --links 8 --shards 2 --window 2 --epochs 3 --budget-ms 1 \
             --assert-max-journal-overhead 1e9 --out {}",
            path.display()
        );
        let out = run(&argv, "").unwrap();
        assert!(out.contains("daemon_loopback_ingest"), "{out}");
        assert!(out.contains("daemon_reconnect_storm"), "{out}");
        assert!(out.contains("daemon_journaled_ingest"), "{out}");
        assert!(out.contains("daemon_recovery"), "{out}");
        assert!(out.contains("reconnect storm vs clean loopback"), "{out}");
        assert!(out.contains("journaled ingest vs clean loopback"), "{out}");
        assert!(out.contains("journal gate passed"), "{out}");
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"bench\": \"daemon\""));
        assert!(json.contains("reconnect_storm_overhead"));
        assert!(json.contains("journal_overhead"));
        assert!(json.contains("\"strategies_agree\": \"true\""));
        // An impossible gate must fail loudly.
        let argv = format!(
            "bench-daemon --links 8 --shards 2 --window 2 --epochs 3 --budget-ms 1 \
             --assert-max-journal-overhead 1e-9 --out {}",
            path.display()
        );
        let err = run(&argv, "").unwrap_err();
        assert!(err.contains("regression"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bench_collect_writes_report() {
        let path = tmp("bench_collect.json");
        let argv = format!(
            "bench-collect --links 6 --shards 2 --budget-ms 2 --out {}",
            path.display()
        );
        let out = run(&argv, "").unwrap();
        assert!(out.contains("collect_s1"), "{out}");
        assert!(out.contains("collect_s2"), "{out}");
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"bench\": \"collect\""));
        std::fs::remove_file(&path).ok();
    }
}
