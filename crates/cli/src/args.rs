//! Minimal flag parsing (no external dependencies).

/// Parsed `--flag value` options plus the subcommand.
#[derive(Debug, Clone, Default)]
pub struct Options {
    /// Target cardinality range `[1, N]`.
    pub n_max: u64,
    /// Target RRMSE, mutually exclusive with `memory_bits`.
    pub error: Option<f64>,
    /// Explicit memory budget in bits.
    pub memory_bits: Option<usize>,
    /// Sketch name for `count` (default "s-bitmap").
    pub sketch: String,
    /// Hash family for the S-bitmap ("splitmix64", "xxh64", "murmur3",
    /// "carter-wegman").
    pub hash: String,
    /// Hash seed.
    pub seed: u64,
    /// Cardinality for `simulate`.
    pub n: Option<u64>,
    /// Replicates for `simulate`.
    pub reps: usize,
    /// Backbone links for `bench-ingest`.
    pub links: usize,
    /// Per-case time budget in milliseconds for `bench-ingest`.
    pub budget_ms: u64,
    /// Cap on `(link, flow)` pairs per iteration for `bench-ingest`.
    pub pairs: usize,
    /// Max worker threads for the concurrent lanes of `bench-ingest`.
    pub threads: usize,
    /// Output path (`bench-ingest`/`bench-collect` JSON report,
    /// `checkpoint`/`merge` checkpoint file).
    pub out: String,
    /// Node shards for `collect` / max shards for `bench-collect` and
    /// `bench-fleet`.
    pub shards: usize,
    /// `bench-fleet` regression gate: fail unless arena batched ingest is
    /// at least this many times faster than the legacy batched path.
    pub assert_min_speedup: Option<f64>,
    /// Workload generator for `bench-fleet` ("backbone", "zipf", "all").
    pub generator: String,
    /// Distinct keys for the `bench-fleet` Zipf lanes.
    pub keys: usize,
    /// `bench-fleet` memory gate: fail if the sparse fleet's peak-RSS
    /// delta exceeds this fraction of the dense arena's on the Zipf
    /// workload.
    pub assert_max_rss_ratio: Option<f64>,
    /// `bench-fleet` throughput gate: fail if sparse Zipf ingest costs
    /// more than this many times the dense arena per item.
    pub assert_max_slowdown: Option<f64>,
    /// Sliding-window span in epochs for `window` / `bench-window`.
    pub window: usize,
    /// Epochs to simulate for `window`.
    pub epochs: usize,
    /// Wire rounds per epoch for the v3 delta lane
    /// (`bench-collect`/`bench-daemon`/`agent`).
    pub rounds: usize,
    /// `bench-collect` regression gate: fail unless the v3 delta lane
    /// ships at least this many times fewer bytes than the same-cadence
    /// full-frame lane.
    pub assert_min_wire_reduction: Option<f64>,
    /// `bench-window` regression gate: fail if W=8 windowed ingest costs
    /// more than this many times the plain arena per item.
    pub assert_max_overhead: Option<f64>,
    /// `bench-window` regression gate: fail unless the fused W=8 window
    /// query is at least this many times faster than the in-run naive
    /// three-pass reference lane.
    pub assert_min_query_speedup: Option<f64>,
    /// Durability directory for `serve` (empty disables journaling).
    pub data_dir: String,
    /// Snapshot cadence in absorbed frames for `serve` (0 disables
    /// periodic snapshots; the journal still covers every frame).
    pub snapshot_every: u64,
    /// `bench-daemon` regression gate: fail if the journaled loopback
    /// lane costs more than this many times the clean loopback lane.
    pub assert_max_journal_overhead: Option<f64>,
    /// `bench-daemon` regression gate: fail if the replicated loopback
    /// lane costs more than this many times the clean loopback lane.
    pub assert_max_replication_overhead: Option<f64>,
    /// Primary address for `serve`: non-empty starts the daemon as a
    /// standby following that collector's record stream.
    pub standby_of: String,
    /// Ordered collector address list (comma-separated) for `agent`:
    /// the agent fails over down the list when the current collector
    /// refuses or times out.
    pub peers: Vec<String>,
    /// Fencing term the collector starts in (`serve`); recovery adopts
    /// the highest journaled term when it is larger.
    pub initial_term: u64,
    /// Collector address (`HOST:PORT`) for `agent` / `query`.
    pub connect: String,
    /// Ingest listener address for `serve`.
    pub listen: String,
    /// Query listener address for `serve`.
    pub query_listen: String,
    /// Credit window `serve` advertises to agents.
    pub credits: u32,
    /// Per-connection read deadline in milliseconds for
    /// `serve`/`agent`/`query`.
    pub deadline_ms: u64,
    /// Agent identity override for `agent` (defaults to shard + 1).
    pub agent_id: Option<u64>,
    /// Node shard index for `agent`.
    pub shard: usize,
    /// Link key for `query estimate` / `query fill`.
    pub key: Option<u64>,
    /// Row count for `query top`.
    pub top: usize,
    /// Positional arguments (checkpoint file paths for `restore`/`merge`,
    /// the request kind for `query`).
    pub paths: Vec<String>,
}

impl Options {
    fn defaults() -> Self {
        Self {
            n_max: 1_000_000,
            error: None,
            memory_bits: None,
            sketch: "s-bitmap".to_string(),
            hash: "splitmix64".to_string(),
            seed: 42,
            n: None,
            reps: 1000,
            links: 150,
            budget_ms: 300,
            pairs: 2_000_000,
            threads: std::thread::available_parallelism().map_or(4, |p| p.get().min(8)),
            out: String::new(),
            shards: 4,
            assert_min_speedup: None,
            generator: "backbone".to_string(),
            keys: 1_200_000,
            assert_max_rss_ratio: None,
            assert_max_slowdown: None,
            window: 8,
            epochs: 12,
            rounds: 8,
            assert_min_wire_reduction: None,
            assert_max_overhead: None,
            assert_min_query_speedup: None,
            data_dir: String::new(),
            snapshot_every: 1_024,
            assert_max_journal_overhead: None,
            assert_max_replication_overhead: None,
            standby_of: String::new(),
            peers: Vec::new(),
            initial_term: 1,
            connect: String::new(),
            listen: "127.0.0.1:7171".to_string(),
            query_listen: "127.0.0.1:7172".to_string(),
            credits: 4,
            deadline_ms: 50,
            agent_id: None,
            shard: 0,
            key: None,
            top: 10,
            paths: Vec::new(),
        }
    }
}

/// Parse `argv` after the subcommand.
///
/// # Errors
///
/// Unknown flags, missing values, or unparseable numbers.
pub fn parse(argv: &[String]) -> Result<Options, String> {
    let mut opts = Options::defaults();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        let value = |i: usize| -> Result<&str, String> {
            argv.get(i + 1)
                .map(String::as_str)
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag {
            "--n-max" => {
                opts.n_max = parse_num(value(i)?).map_err(|e| format!("--n-max: {e}"))?;
                i += 2;
            }
            "--error" => {
                opts.error = Some(value(i)?.parse().map_err(|e| format!("--error: {e}"))?);
                i += 2;
            }
            "--memory-bits" => {
                opts.memory_bits =
                    Some(parse_num(value(i)?).map_err(|e| format!("--memory-bits: {e}"))? as usize);
                i += 2;
            }
            "--sketch" => {
                opts.sketch = value(i)?.to_string();
                i += 2;
            }
            "--hash" => {
                opts.hash = value(i)?.to_string();
                i += 2;
            }
            "--seed" => {
                opts.seed = value(i)?.parse().map_err(|e| format!("--seed: {e}"))?;
                i += 2;
            }
            "--n" => {
                opts.n = Some(parse_num(value(i)?).map_err(|e| format!("--n: {e}"))?);
                i += 2;
            }
            "--reps" => {
                opts.reps = value(i)?.parse().map_err(|e| format!("--reps: {e}"))?;
                i += 2;
            }
            "--links" => {
                opts.links = parse_num(value(i)?).map_err(|e| format!("--links: {e}"))? as usize;
                i += 2;
            }
            "--budget-ms" => {
                opts.budget_ms = parse_num(value(i)?).map_err(|e| format!("--budget-ms: {e}"))?;
                i += 2;
            }
            "--pairs" => {
                opts.pairs = parse_num(value(i)?).map_err(|e| format!("--pairs: {e}"))? as usize;
                i += 2;
            }
            "--threads" => {
                opts.threads =
                    parse_num(value(i)?).map_err(|e| format!("--threads: {e}"))? as usize;
                i += 2;
            }
            "--out" => {
                opts.out = value(i)?.to_string();
                i += 2;
            }
            "--shards" => {
                opts.shards = parse_num(value(i)?).map_err(|e| format!("--shards: {e}"))? as usize;
                i += 2;
            }
            "--assert-min-speedup" => {
                let v: f64 = value(i)?
                    .parse()
                    .map_err(|e| format!("--assert-min-speedup: {e}"))?;
                if !(v.is_finite() && v > 0.0) {
                    return Err(format!("--assert-min-speedup must be positive, got {v}"));
                }
                opts.assert_min_speedup = Some(v);
                i += 2;
            }
            "--generator" => {
                let v = value(i)?;
                if !matches!(v, "backbone" | "zipf" | "all") {
                    return Err(format!(
                        "--generator must be backbone, zipf or all, got `{v}`"
                    ));
                }
                opts.generator = v.to_string();
                i += 2;
            }
            "--keys" => {
                let v = parse_num(value(i)?).map_err(|e| format!("--keys: {e}"))? as usize;
                if v == 0 {
                    return Err("--keys must be at least 1".into());
                }
                opts.keys = v;
                i += 2;
            }
            "--assert-max-rss-ratio" => {
                let v: f64 = value(i)?
                    .parse()
                    .map_err(|e| format!("--assert-max-rss-ratio: {e}"))?;
                if !(v.is_finite() && v > 0.0) {
                    return Err(format!("--assert-max-rss-ratio must be positive, got {v}"));
                }
                opts.assert_max_rss_ratio = Some(v);
                i += 2;
            }
            "--assert-max-slowdown" => {
                let v: f64 = value(i)?
                    .parse()
                    .map_err(|e| format!("--assert-max-slowdown: {e}"))?;
                if !(v.is_finite() && v > 0.0) {
                    return Err(format!("--assert-max-slowdown must be positive, got {v}"));
                }
                opts.assert_max_slowdown = Some(v);
                i += 2;
            }
            "--window" => {
                opts.window = parse_num(value(i)?).map_err(|e| format!("--window: {e}"))? as usize;
                i += 2;
            }
            "--epochs" => {
                opts.epochs = parse_num(value(i)?).map_err(|e| format!("--epochs: {e}"))? as usize;
                i += 2;
            }
            "--rounds" => {
                let v = parse_num(value(i)?).map_err(|e| format!("--rounds: {e}"))? as usize;
                if v == 0 {
                    return Err("--rounds must be at least 1".into());
                }
                opts.rounds = v;
                i += 2;
            }
            "--assert-min-wire-reduction" => {
                let v: f64 = value(i)?
                    .parse()
                    .map_err(|e| format!("--assert-min-wire-reduction: {e}"))?;
                if !(v.is_finite() && v > 0.0) {
                    return Err(format!(
                        "--assert-min-wire-reduction must be positive, got {v}"
                    ));
                }
                opts.assert_min_wire_reduction = Some(v);
                i += 2;
            }
            "--assert-max-overhead" => {
                let v: f64 = value(i)?
                    .parse()
                    .map_err(|e| format!("--assert-max-overhead: {e}"))?;
                if !(v.is_finite() && v > 0.0) {
                    return Err(format!("--assert-max-overhead must be positive, got {v}"));
                }
                opts.assert_max_overhead = Some(v);
                i += 2;
            }
            "--assert-min-query-speedup" => {
                let v: f64 = value(i)?
                    .parse()
                    .map_err(|e| format!("--assert-min-query-speedup: {e}"))?;
                if !(v.is_finite() && v > 0.0) {
                    return Err(format!(
                        "--assert-min-query-speedup must be positive, got {v}"
                    ));
                }
                opts.assert_min_query_speedup = Some(v);
                i += 2;
            }
            "--data-dir" => {
                opts.data_dir = value(i)?.to_string();
                i += 2;
            }
            "--snapshot-every" => {
                opts.snapshot_every =
                    parse_num(value(i)?).map_err(|e| format!("--snapshot-every: {e}"))?;
                i += 2;
            }
            "--assert-max-journal-overhead" => {
                let v: f64 = value(i)?
                    .parse()
                    .map_err(|e| format!("--assert-max-journal-overhead: {e}"))?;
                if !(v.is_finite() && v > 0.0) {
                    return Err(format!(
                        "--assert-max-journal-overhead must be positive, got {v}"
                    ));
                }
                opts.assert_max_journal_overhead = Some(v);
                i += 2;
            }
            "--assert-max-replication-overhead" => {
                let v: f64 = value(i)?
                    .parse()
                    .map_err(|e| format!("--assert-max-replication-overhead: {e}"))?;
                if !(v.is_finite() && v > 0.0) {
                    return Err(format!(
                        "--assert-max-replication-overhead must be positive, got {v}"
                    ));
                }
                opts.assert_max_replication_overhead = Some(v);
                i += 2;
            }
            "--standby-of" => {
                opts.standby_of = value(i)?.to_string();
                i += 2;
            }
            "--peers" => {
                opts.peers = value(i)?
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect();
                if opts.peers.is_empty() {
                    return Err("--peers needs at least one HOST:PORT".into());
                }
                i += 2;
            }
            "--initial-term" => {
                let v = parse_num(value(i)?).map_err(|e| format!("--initial-term: {e}"))?;
                if v == 0 {
                    return Err("--initial-term must be at least 1".into());
                }
                opts.initial_term = v;
                i += 2;
            }
            "--connect" => {
                opts.connect = value(i)?.to_string();
                i += 2;
            }
            "--listen" => {
                opts.listen = value(i)?.to_string();
                i += 2;
            }
            "--query-listen" => {
                opts.query_listen = value(i)?.to_string();
                i += 2;
            }
            "--credits" => {
                let v = parse_num(value(i)?).map_err(|e| format!("--credits: {e}"))?;
                if v == 0 || v > u64::from(u32::MAX) {
                    return Err(format!("--credits must be in [1, 2^32), got {v}"));
                }
                opts.credits = v as u32;
                i += 2;
            }
            "--deadline-ms" => {
                let v = parse_num(value(i)?).map_err(|e| format!("--deadline-ms: {e}"))?;
                if v == 0 {
                    return Err("--deadline-ms must be at least 1".into());
                }
                opts.deadline_ms = v;
                i += 2;
            }
            "--agent-id" => {
                opts.agent_id = Some(parse_num(value(i)?).map_err(|e| format!("--agent-id: {e}"))?);
                i += 2;
            }
            "--shard" => {
                opts.shard = parse_num(value(i)?).map_err(|e| format!("--shard: {e}"))? as usize;
                i += 2;
            }
            "--key" => {
                opts.key = Some(parse_num(value(i)?).map_err(|e| format!("--key: {e}"))?);
                i += 2;
            }
            "--top" => {
                opts.top = parse_num(value(i)?).map_err(|e| format!("--top: {e}"))? as usize;
                i += 2;
            }
            other if !other.starts_with('-') => {
                // Positional argument: a checkpoint file path.
                opts.paths.push(other.to_string());
                i += 1;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if opts.error.is_some() && opts.memory_bits.is_some() {
        return Err("--error and --memory-bits are mutually exclusive".into());
    }
    if let Some(e) = opts.error {
        if !(e > 0.0 && e < 1.0) {
            return Err(format!("--error must be in (0, 1), got {e}"));
        }
    }
    Ok(opts)
}

/// Accept plain integers plus `k`/`m` suffixes and scientific notation
/// ("1e6", "64k", "1.5m").
fn parse_num(s: &str) -> Result<u64, String> {
    let lower = s.to_ascii_lowercase();
    let (digits, mult) = if let Some(d) = lower.strip_suffix('k') {
        (d, 1_000.0)
    } else if let Some(d) = lower.strip_suffix('m') {
        (d, 1_000_000.0)
    } else {
        (lower.as_str(), 1.0)
    };
    let base: f64 = digits.parse().map_err(|_| format!("not a number: {s}"))?;
    let v = base * mult;
    if !(v >= 0.0 && v <= u64::MAX as f64) {
        return Err(format!("out of range: {s}"));
    }
    Ok(v.round() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn defaults_without_flags() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.n_max, 1_000_000);
        assert_eq!(o.sketch, "s-bitmap");
        assert_eq!(o.seed, 42);
    }

    #[test]
    fn parses_suffixes_and_scientific() {
        let o = parse(&args("--n-max 1.5m --memory-bits 64k")).unwrap();
        assert_eq!(o.n_max, 1_500_000);
        assert_eq!(o.memory_bits, Some(64_000));
        let o = parse(&args("--n-max 1e6")).unwrap();
        assert_eq!(o.n_max, 1_000_000);
    }

    #[test]
    fn rejects_conflicting_sizing() {
        assert!(parse(&args("--error 0.01 --memory-bits 4000")).is_err());
    }

    #[test]
    fn rejects_bad_error() {
        assert!(parse(&args("--error 1.5")).is_err());
        assert!(parse(&args("--error 0")).is_err());
    }

    #[test]
    fn parses_hash_flag() {
        let o = parse(&args("--hash murmur3")).unwrap();
        assert_eq!(o.hash, "murmur3");
        assert_eq!(parse(&[]).unwrap().hash, "splitmix64");
    }

    #[test]
    fn rejects_unknown_flag() {
        assert!(parse(&args("--bogus 3")).is_err());
    }

    #[test]
    fn collects_positional_paths_and_shards() {
        let o = parse(&args("a.ckpt b.ckpt --shards 8 c.ckpt")).unwrap();
        assert_eq!(o.paths, vec!["a.ckpt", "b.ckpt", "c.ckpt"]);
        assert_eq!(o.shards, 8);
        assert!(parse(&[]).unwrap().paths.is_empty());
    }

    #[test]
    fn rejects_missing_value() {
        assert!(parse(&args("--n-max")).is_err());
    }

    #[test]
    fn parses_window_flags() {
        let o = parse(&args("--window 4 --epochs 9 --assert-max-overhead 1.5")).unwrap();
        assert_eq!(o.window, 4);
        assert_eq!(o.epochs, 9);
        assert_eq!(o.assert_max_overhead, Some(1.5));
        let d = parse(&[]).unwrap();
        assert_eq!(d.window, 8);
        assert_eq!(d.epochs, 12);
        assert_eq!(d.assert_max_overhead, None);
        assert!(parse(&args("--assert-max-overhead 0")).is_err());
        assert!(parse(&args("--assert-max-overhead nah")).is_err());
    }

    #[test]
    fn parses_assert_min_query_speedup() {
        let o = parse(&args("--assert-min-query-speedup 1.5")).unwrap();
        assert_eq!(o.assert_min_query_speedup, Some(1.5));
        assert_eq!(parse(&[]).unwrap().assert_min_query_speedup, None);
        assert!(parse(&args("--assert-min-query-speedup 0")).is_err());
        assert!(parse(&args("--assert-min-query-speedup -1")).is_err());
        assert!(parse(&args("--assert-min-query-speedup nah")).is_err());
    }

    #[test]
    fn parses_daemon_flags() {
        let o = parse(&args(
            "--connect 10.0.0.2:7171 --listen 0.0.0.0:7171 --query-listen 0.0.0.0:7172 \
             --credits 8 --deadline-ms 20 --agent-id 9 --shard 2 --key 17 --top 5",
        ))
        .unwrap();
        assert_eq!(o.connect, "10.0.0.2:7171");
        assert_eq!(o.listen, "0.0.0.0:7171");
        assert_eq!(o.query_listen, "0.0.0.0:7172");
        assert_eq!(o.credits, 8);
        assert_eq!(o.deadline_ms, 20);
        assert_eq!(o.agent_id, Some(9));
        assert_eq!(o.shard, 2);
        assert_eq!(o.key, Some(17));
        assert_eq!(o.top, 5);
        let d = parse(&[]).unwrap();
        assert!(d.connect.is_empty());
        assert_eq!(d.listen, "127.0.0.1:7171");
        assert_eq!(d.query_listen, "127.0.0.1:7172");
        assert_eq!(d.credits, 4);
        assert_eq!(d.deadline_ms, 50);
        assert_eq!(d.agent_id, None);
        assert_eq!(d.shard, 0);
        assert_eq!(d.key, None);
        assert_eq!(d.top, 10);
        assert!(parse(&args("--credits 0")).is_err());
        assert!(parse(&args("--deadline-ms 0")).is_err());
        assert!(parse(&args("--key nah")).is_err());
    }

    #[test]
    fn parses_rounds_and_wire_reduction_gate() {
        let o = parse(&args("--rounds 4 --assert-min-wire-reduction 5.0")).unwrap();
        assert_eq!(o.rounds, 4);
        assert_eq!(o.assert_min_wire_reduction, Some(5.0));
        let d = parse(&[]).unwrap();
        assert_eq!(d.rounds, 8);
        assert_eq!(d.assert_min_wire_reduction, None);
        assert!(parse(&args("--rounds 0")).is_err());
        assert!(parse(&args("--assert-min-wire-reduction 0")).is_err());
        assert!(parse(&args("--assert-min-wire-reduction nah")).is_err());
    }

    #[test]
    fn parses_durability_flags() {
        let o = parse(&args(
            "--data-dir /var/lib/sbitmapd --snapshot-every 64 \
             --assert-max-journal-overhead 1.25",
        ))
        .unwrap();
        assert_eq!(o.data_dir, "/var/lib/sbitmapd");
        assert_eq!(o.snapshot_every, 64);
        assert_eq!(o.assert_max_journal_overhead, Some(1.25));
        let d = parse(&[]).unwrap();
        assert!(d.data_dir.is_empty());
        assert_eq!(d.snapshot_every, 1_024);
        assert_eq!(d.assert_max_journal_overhead, None);
        // 0 is legal for --snapshot-every: it disables snapshots while
        // keeping the journal.
        assert_eq!(
            parse(&args("--snapshot-every 0")).unwrap().snapshot_every,
            0
        );
        assert!(parse(&args("--assert-max-journal-overhead 0")).is_err());
        assert!(parse(&args("--assert-max-journal-overhead nah")).is_err());
        assert!(parse(&args("--data-dir")).is_err());
    }

    #[test]
    fn parses_replication_flags() {
        let o = parse(&args(
            "--standby-of 10.0.0.1:7171 --peers 10.0.0.1:7171,10.0.0.2:7171 \
             --initial-term 3 --assert-max-replication-overhead 1.3",
        ))
        .unwrap();
        assert_eq!(o.standby_of, "10.0.0.1:7171");
        assert_eq!(o.peers, vec!["10.0.0.1:7171", "10.0.0.2:7171"]);
        assert_eq!(o.initial_term, 3);
        assert_eq!(o.assert_max_replication_overhead, Some(1.3));
        let d = parse(&[]).unwrap();
        assert!(d.standby_of.is_empty());
        assert!(d.peers.is_empty());
        assert_eq!(d.initial_term, 1);
        assert_eq!(d.assert_max_replication_overhead, None);
        assert!(parse(&args("--peers ,")).is_err());
        assert!(parse(&args("--initial-term 0")).is_err());
        assert!(parse(&args("--assert-max-replication-overhead 0")).is_err());
        assert!(parse(&args("--assert-max-replication-overhead nah")).is_err());
    }

    #[test]
    fn parses_assert_min_speedup() {
        let o = parse(&args("--assert-min-speedup 1.5")).unwrap();
        assert_eq!(o.assert_min_speedup, Some(1.5));
        assert_eq!(parse(&[]).unwrap().assert_min_speedup, None);
        assert!(parse(&args("--assert-min-speedup 0")).is_err());
        assert!(parse(&args("--assert-min-speedup nah")).is_err());
    }

    #[test]
    fn parses_zipf_fleet_flags() {
        let o = parse(&args(
            "--generator zipf --keys 1.2m --assert-max-rss-ratio 0.25 --assert-max-slowdown 1.5",
        ))
        .unwrap();
        assert_eq!(o.generator, "zipf");
        assert_eq!(o.keys, 1_200_000);
        assert_eq!(o.assert_max_rss_ratio, Some(0.25));
        assert_eq!(o.assert_max_slowdown, Some(1.5));
        let d = parse(&[]).unwrap();
        assert_eq!(d.generator, "backbone");
        assert_eq!(d.keys, 1_200_000);
        assert_eq!(d.assert_max_rss_ratio, None);
        assert_eq!(d.assert_max_slowdown, None);
        assert!(parse(&args("--generator uniform")).is_err());
        assert!(parse(&args("--keys 0")).is_err());
        assert!(parse(&args("--assert-max-rss-ratio 0")).is_err());
        assert!(parse(&args("--assert-max-rss-ratio nah")).is_err());
        assert!(parse(&args("--assert-max-slowdown 0")).is_err());
        assert!(parse(&args("--assert-max-slowdown nah")).is_err());
    }
}
