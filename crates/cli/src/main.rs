//! `sbitmap` — command-line distinct counting.
//!
//! ```text
//! sbitmap count   [--sketch NAME] [--n-max N] [--error E | --memory-bits M] [--seed S]
//! sbitmap plan    [--n-max N] [--error E]
//! sbitmap compare [--n-max N] [--memory-bits M] [--seed S]
//! sbitmap simulate [--n-max N] [--memory-bits M] --n CARD [--reps R]
//! ```
//!
//! `count` and `compare` read newline-delimited items from stdin.
//! `plan` prints the memory each sketch family needs for a target.
//! `simulate` Monte-Carlos the S-bitmap error for a configuration using
//! the exact Lemma-1 fast simulator (no hashing, no stream).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout().lock();
    match commands::dispatch(&argv, &mut stdin.lock(), &mut stdout) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{}", commands::USAGE);
            ExitCode::FAILURE
        }
    }
}
