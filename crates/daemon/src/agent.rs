//! The node agent: ships one shard's epoch frames to the collector,
//! surviving cuts, stalls, corruption and restarts.
//!
//! Delivery contract — **at-least-once, resume from last ack**: a frame
//! leaves the agent's `pending` set only when the collector acks its
//! epoch, so a connection lost mid-flight simply means the next session
//! retransmits whatever is still pending. The collector's per-source
//! absorb guard (and the OR-idempotence of sketch union beneath it)
//! turns every replay into a no-op, which is what makes at-least-once
//! equivalent to exactly-once for this state.
//!
//! The agent is deliberately single-threaded: one stream, writes
//! interleaved with reads through [`FrameReader::inner_mut`], a credit
//! window from the handshake bounding unacked frames. Reconnection uses
//! capped exponential backoff with deterministic seeded jitter so a
//! fleet of agents restarting together does not stampede the collector
//! in lockstep — and so every test run backs off identically.

use std::cell::Cell;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use sbitmap_hash::mix64;
use sbitmap_stream::net::{
    encode, AckOutcome, ConfigEcho, ErrorCode, FrameReader, Message, QueryRequest, ReadEvent, Role,
    PROTO_VERSION,
};
use sbitmap_stream::{EpochFrames, FaultPlan, FaultyStream};

/// Capped exponential backoff with deterministic jitter.
#[derive(Debug, Clone)]
pub struct Backoff {
    /// First retry delay.
    pub base: Duration,
    /// Upper bound on any delay.
    pub cap: Duration,
    /// Jitter seed; two agents with different seeds spread out, the
    /// same seed replays the same schedule.
    pub seed: u64,
}

impl Default for Backoff {
    fn default() -> Self {
        Self {
            base: Duration::from_millis(2),
            cap: Duration::from_millis(200),
            seed: 0x0b_ac_0f_f5,
        }
    }
}

impl Backoff {
    /// The delay before retry number `attempt` (0-based): `base · 2^n`
    /// capped at `cap`, scaled by a jitter fraction in `[0.5, 1.0]`
    /// derived from the seed — deterministic per `(seed, attempt)`.
    pub fn delay(&self, attempt: u32) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32.checked_shl(attempt.min(20)).unwrap_or(u32::MAX))
            .min(self.cap);
        let r = mix64(self.seed ^ u64::from(attempt).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        // 53 high bits → uniform fraction in [0, 1), mapped to [0.5, 1.0).
        let frac = 0.5 + (r >> 11) as f64 / (1u64 << 53) as f64 * 0.5;
        exp.mul_f64(frac)
    }
}

/// Configuration of one agent run.
#[derive(Debug, Clone)]
pub struct AgentConfig {
    /// Stable identity; drives the collector's at-least-once guard, so
    /// it must survive reconnects (and restarts, if frames could be
    /// replayed across them).
    pub agent_id: u64,
    /// The sketch configuration the collector must echo.
    pub config: ConfigEcho,
    /// Local backlog bound: while disconnected the agent keeps at most
    /// this many unacked frames, dropping the **oldest** beyond it
    /// (oldest epochs expire from the collector's window first anyway).
    pub buffer_cap: usize,
    /// Give up after this many connection attempts.
    pub max_attempts: u32,
    /// Reconnect pacing.
    pub backoff: Backoff,
    /// A session with no ack (or other progress) for this long is torn
    /// down and retried.
    pub ack_timeout: Duration,
    /// Fault injection plan (clean by default); see
    /// [`sbitmap_stream::fault`].
    pub plan: FaultPlan,
}

impl AgentConfig {
    /// An agent with production-shaped defaults for the given identity
    /// and config echo.
    pub fn new(agent_id: u64, config: ConfigEcho) -> Self {
        Self {
            agent_id,
            config,
            buffer_cap: usize::MAX,
            max_attempts: 24,
            backoff: Backoff {
                seed: mix64(agent_id ^ 0xa6e7),
                ..Backoff::default()
            },
            ack_timeout: Duration::from_secs(2),
            plan: FaultPlan::none(),
        }
    }
}

/// What one [`run_agent`] call did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AgentReport {
    /// Frames acknowledged (any outcome) and removed from pending.
    pub frames_acked: u64,
    /// Acks that came back [`AckOutcome::Duplicate`] — replays the
    /// collector's guard skipped.
    pub duplicates: u64,
    /// Targeted same-session retransmits after a `BadFrame` error.
    pub retransmits: u64,
    /// Connection attempts that reached an established stream.
    pub connections: u64,
    /// Frames dropped to honor [`AgentConfig::buffer_cap`].
    pub dropped: u64,
    /// Typed error frames received from the collector.
    pub error_frames_seen: u64,
    /// `Batch`/`BatchDelta` frames written to the stream, retransmits
    /// and replays included.
    pub frames_sent: u64,
    /// Sketch-payload bytes written to the stream across all sends —
    /// the agent-side view of the wire cost the v3 encoding shrinks.
    pub bytes_on_wire: u64,
    /// Epochs re-sent from their round-0 baseline after the collector
    /// answered [`ErrorCode::MissingBaseline`].
    pub baseline_resyncs: u64,
    /// Sessions backed off after the collector shed a frame with
    /// [`ErrorCode::Busy`] (the agent slept the advertised retry-after
    /// hint, then reconnected and retransmitted).
    pub busy_backoffs: u64,
    /// Acks discarded because they carried a fencing term older than
    /// one this agent had already seen — answers from a deposed
    /// primary; their frames stay pending and are retransmitted to the
    /// new one.
    pub stale_acks: u64,
    /// Times the agent rotated to the next collector address (connect
    /// failure, [`ErrorCode::NotPrimary`], or a stale-term welcome).
    pub failovers: u64,
}

/// One unacked wire frame: a full v2 epoch checkpoint (`round: None`,
/// sent as [`Message::Batch`]) or one round of a v3 delta chain
/// (`round: Some(r)`, sent as [`Message::BatchDelta`]).
#[derive(Debug, Clone)]
struct WireItem {
    epoch: u64,
    round: Option<u32>,
    bytes: Vec<u8>,
}

/// How one session ended, from the outer retry loop's point of view.
enum SessionEnd {
    /// All pending frames acked; stop.
    Done,
    /// Transient trouble; back off and reconnect.
    Retry,
    /// This collector cannot take writes (standby, or fenced behind a
    /// newer term): back off and try the *next* configured address.
    RetryRotate,
    /// The collector rejected us in a way retrying cannot fix.
    Fatal(String),
}

/// Ship `frames` (`(epoch, tag-9 fleet checkpoint)` pairs) to the
/// collector, reconnecting through `connect` until every frame is acked
/// or the attempt budget is exhausted.
///
/// `connect` is called with the 0-based attempt number and returns a
/// fresh duplex stream (a `TcpStream` in production; anything
/// `Read + Write` in tests). The connector should set a read timeout —
/// the agent relies on periodic read timeouts to notice a dead or
/// stalled collector via [`AgentConfig::ack_timeout`].
///
/// # Errors
///
/// Exhausting [`AgentConfig::max_attempts`], or a fatal handshake
/// rejection (version/config mismatch).
pub fn run_agent<S, C>(
    cfg: &AgentConfig,
    frames: Vec<(u64, Vec<u8>)>,
    connect: C,
) -> Result<AgentReport, String>
where
    S: Read + Write,
    C: FnMut(u32) -> io::Result<S>,
{
    let items = frames
        .into_iter()
        .map(|(epoch, bytes)| WireItem {
            epoch,
            round: None,
            bytes,
        })
        .collect();
    let mut connect = connect;
    run_items(cfg, items, &HashMap::new(), &HashMap::new(), |a, _| {
        connect(a)
    })
}

/// Ship a v3 delta backlog — each epoch's round chain from
/// [`sbitmap_stream::DeltaFrameSource`] — reconnecting until every round
/// is acked or the attempt budget is exhausted.
///
/// Per-shard baseline tracking lives here: the agent keeps every
/// epoch's round-0 baseline (even after it is acked) so a collector
/// answering [`ErrorCode::MissingBaseline`] — restart, expiry race, or
/// a reordered chain head — gets the epoch re-sent from its baseline,
/// and at-least-once delivery stays correct because replayed rounds
/// come back as guard duplicates.
///
/// When the collector's `Welcome` negotiates protocol 1 (a v2-only
/// peer), the agent falls back to shipping each pending epoch's final
/// full checkpoint (`fulls.last()`) as a plain `Batch` instead.
///
/// # Errors
///
/// Exhausting [`AgentConfig::max_attempts`], or a fatal handshake
/// rejection (version/config mismatch).
pub fn run_agent_rounds<S, C>(
    cfg: &AgentConfig,
    backlog: Vec<EpochFrames>,
    connect: C,
) -> Result<AgentReport, String>
where
    S: Read + Write,
    C: FnMut(u32) -> io::Result<S>,
{
    let mut items = Vec::new();
    let mut baselines = HashMap::new();
    let mut fallback = HashMap::new();
    for ef in backlog {
        if let Some(first) = ef.deltas.first() {
            baselines.insert(ef.epoch, first.clone());
        }
        if let Some(full) = ef.fulls.last() {
            fallback.insert(ef.epoch, full.clone());
        }
        for (round, bytes) in ef.deltas.into_iter().enumerate() {
            items.push(WireItem {
                epoch: ef.epoch,
                round: Some(round as u32),
                bytes,
            });
        }
    }
    let mut connect = connect;
    run_items(cfg, items, &baselines, &fallback, |a, _| connect(a))
}

/// Ship a v3 delta backlog to a **replicated collector fleet**: an
/// ordered address list (primary first, standbys after). The agent
/// dials the first address, and rotates to the next on connection
/// refusal/timeout, on a typed [`ErrorCode::NotPrimary`] answer, or on
/// a welcome carrying an older fencing term than one already seen —
/// the failover path after a primary dies and a standby is promoted.
///
/// Term tracking makes the rotation safe against split-brain: the agent
/// remembers the highest term any collector welcomed it with, refuses
/// to absorb acks from a lower one (the frames stay pending and are
/// retransmitted to the new primary, where the seen-guard keeps
/// absorption exactly-once-effective), and presents that term in its
/// hello so a deposed primary fences itself.
///
/// # Errors
///
/// An empty address list, exhausting [`AgentConfig::max_attempts`], or
/// a fatal handshake rejection (version/config mismatch).
pub fn run_agent_rounds_failover(
    cfg: &AgentConfig,
    backlog: Vec<EpochFrames>,
    addrs: &[String],
    connect_timeout: Duration,
    read_deadline: Duration,
) -> Result<AgentReport, String> {
    if addrs.is_empty() {
        return Err(format!("agent {} has no collector addresses", cfg.agent_id));
    }
    let mut items = Vec::new();
    let mut baselines = HashMap::new();
    let mut fallback = HashMap::new();
    for ef in backlog {
        if let Some(first) = ef.deltas.first() {
            baselines.insert(ef.epoch, first.clone());
        }
        if let Some(full) = ef.fulls.last() {
            fallback.insert(ef.epoch, full.clone());
        }
        for (round, bytes) in ef.deltas.into_iter().enumerate() {
            items.push(WireItem {
                epoch: ef.epoch,
                round: Some(round as u32),
                bytes,
            });
        }
    }
    let current = Cell::new(0usize);
    let rotations = Cell::new(0u64);
    let rotate = || {
        current.set((current.get() + 1) % addrs.len());
        rotations.set(rotations.get() + 1);
    };
    let connect = |_attempt: u32, rotate_first: bool| -> io::Result<TcpStream> {
        if rotate_first {
            rotate();
        }
        let addr = &addrs[current.get()];
        let sock = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "unresolvable address"))?;
        match TcpStream::connect_timeout(&sock, connect_timeout) {
            Ok(stream) => {
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(Some(read_deadline));
                let _ = stream.set_write_timeout(Some(connect_timeout));
                Ok(stream)
            }
            Err(e) => {
                // A dead or refusing host: aim the next attempt at the
                // next address in the list.
                rotate();
                Err(e)
            }
        }
    };
    let mut report = run_items(cfg, items, &baselines, &fallback, connect)?;
    report.failovers = rotations.get();
    Ok(report)
}

/// The shared retry loop beneath [`run_agent`], [`run_agent_rounds`]
/// and [`run_agent_rounds_failover`]. `connect` receives the attempt
/// number and whether the previous session asked to rotate to the next
/// collector address (always `false` for the single-address entry
/// points, which ignore it).
fn run_items<S, C>(
    cfg: &AgentConfig,
    items: Vec<WireItem>,
    baselines: &HashMap<u64, Vec<u8>>,
    fallback: &HashMap<u64, Vec<u8>>,
    mut connect: C,
) -> Result<AgentReport, String>
where
    S: Read + Write,
    C: FnMut(u32, bool) -> io::Result<S>,
{
    let mut report = AgentReport::default();
    let mut pending = items;
    let mut attempt: u32 = 0;
    // The highest fencing term any collector has welcomed us with —
    // survives reconnects, so acks from a deposed primary are
    // recognizably stale.
    let mut term_seen: u64 = cfg.config.term;
    let mut rotate_next = false;
    while !pending.is_empty() {
        if attempt >= cfg.max_attempts {
            return Err(format!(
                "agent {} gave up after {} attempts with {} frames unacked",
                cfg.agent_id,
                attempt,
                pending.len()
            ));
        }
        if attempt > 0 {
            std::thread::sleep(cfg.backoff.delay(attempt - 1));
            // While disconnected the local backlog is bounded: shed the
            // oldest epochs first — they are the ones the collector's
            // window will expire first anyway.
            if pending.len() > cfg.buffer_cap {
                let shed = pending.len() - cfg.buffer_cap;
                pending.drain(..shed);
                report.dropped += shed as u64;
            }
        }
        let byte_plan = cfg.plan.for_attempt(attempt);
        attempt += 1;
        let want_rotate = std::mem::take(&mut rotate_next);
        let stream = match connect(attempt - 1, want_rotate) {
            Ok(s) => s,
            Err(_) => continue,
        };
        report.connections += 1;
        let stream = FaultyStream::new(stream, &byte_plan);
        match session(
            cfg,
            &byte_plan,
            &mut pending,
            baselines,
            fallback,
            stream,
            &mut report,
            &mut term_seen,
        ) {
            SessionEnd::Done => break,
            SessionEnd::Retry => {}
            SessionEnd::RetryRotate => rotate_next = true,
            SessionEnd::Fatal(e) => return Err(e),
        }
    }
    Ok(report)
}

/// Convenience for monitoring clients: open a query session over
/// `stream`, send one request, and return the raw reply message.
///
/// # Errors
///
/// Handshake rejection, transport failure, or a non-reply answer.
pub fn query_once<S: Read + Write>(
    stream: S,
    request: &QueryRequest,
    deadline: Duration,
) -> Result<Message, String> {
    let mut reader = FrameReader::new(stream);
    let hello = Message::Hello {
        proto: PROTO_VERSION,
        role: Role::Query,
        agent: 0,
        config: ConfigEcho {
            n_max: 0,
            m: 0,
            sampling_bits: 0,
            seed: 0,
            window: 0,
            term: 0,
        },
    };
    send(&mut reader, &hello).map_err(|e| format!("query hello: {e}"))?;
    let start = Instant::now();
    loop {
        match reader.read_event() {
            Ok(ReadEvent::Message(Message::Welcome { .. })) => break,
            Ok(ReadEvent::Message(Message::Error { code, detail, .. })) => {
                return Err(format!("query handshake rejected ({code:?}): {detail}"));
            }
            Ok(ReadEvent::TimedOut) if start.elapsed() < deadline => {}
            other => return Err(format!("query handshake: unexpected {other:?}")),
        }
    }
    send(&mut reader, &Message::Query(request.clone())).map_err(|e| format!("query send: {e}"))?;
    let start = Instant::now();
    loop {
        match reader.read_event() {
            Ok(ReadEvent::Message(msg @ (Message::Reply(_) | Message::Error { .. }))) => {
                let _ = send(&mut reader, &Message::Goodbye);
                return Ok(msg);
            }
            Ok(ReadEvent::TimedOut) if start.elapsed() < deadline => {}
            other => return Err(format!("query reply: unexpected {other:?}")),
        }
    }
}

/// Write one message through the reader's underlying stream (the agent
/// is single-threaded, so reads and writes interleave on one handle).
fn send<S: Read + Write>(reader: &mut FrameReader<S>, msg: &Message) -> io::Result<()> {
    let bytes = encode(msg);
    reader.inner_mut().write_all(&bytes)?;
    reader.inner_mut().flush()
}

/// One connection's worth of work: handshake, then send pending frames
/// under the credit window and process acks until pending drains or the
/// session dies.
#[allow(clippy::too_many_arguments)] // internal seam; every arg is distinct state
fn session<S: Read + Write>(
    cfg: &AgentConfig,
    plan: &FaultPlan,
    pending: &mut Vec<WireItem>,
    baselines: &HashMap<u64, Vec<u8>>,
    fallback: &HashMap<u64, Vec<u8>>,
    stream: FaultyStream<S>,
    report: &mut AgentReport,
    term_seen: &mut u64,
) -> SessionEnd {
    let mut reader = FrameReader::new(stream);
    // The hello presents the highest term we have seen: a deposed
    // primary that missed its own fencing recognizes it and refuses.
    let hello = Message::Hello {
        proto: PROTO_VERSION,
        role: Role::Ingest,
        agent: cfg.agent_id,
        config: cfg.config.with_term(*term_seen),
    };
    if send(&mut reader, &hello).is_err() {
        return SessionEnd::Retry;
    }
    let mut last_progress = Instant::now();
    let credits = loop {
        match reader.read_event() {
            Ok(ReadEvent::Message(Message::Welcome {
                credits,
                proto,
                config,
            })) => {
                if config.term < *term_seen {
                    // A welcome from a term the fleet has moved past: a
                    // stale primary that failed to fence itself. Never
                    // write to it — rotate to the next address.
                    return SessionEnd::RetryRotate;
                }
                *term_seen = config.term;
                if proto < 2 && pending.iter().any(|i| i.round.is_some()) {
                    // The collector is v2-only: collapse each pending
                    // epoch's delta chain into its full checkpoint. The
                    // downgrade is sticky — items stay full frames for
                    // every later session too.
                    let mut fulls: Vec<WireItem> = Vec::new();
                    for item in pending.iter() {
                        if fulls.iter().any(|f| f.epoch == item.epoch) {
                            continue;
                        }
                        let Some(bytes) = fallback.get(&item.epoch) else {
                            return SessionEnd::Fatal(format!(
                                "agent {} has no full-frame fallback for epoch {} \
                                 on a protocol-{proto} session",
                                cfg.agent_id, item.epoch
                            ));
                        };
                        fulls.push(WireItem {
                            epoch: item.epoch,
                            round: None,
                            bytes: bytes.clone(),
                        });
                    }
                    *pending = fulls;
                }
                break (credits.max(1)) as usize;
            }
            Ok(ReadEvent::Message(Message::Error { code, detail, .. })) => {
                report.error_frames_seen += 1;
                match code {
                    ErrorCode::VersionMismatch | ErrorCode::ConfigMismatch => {
                        return SessionEnd::Fatal(format!(
                            "collector rejected handshake ({code:?}): {detail}"
                        ));
                    }
                    // A standby (or a fenced ex-primary): writes only
                    // land on the acting primary, so try the next
                    // address in the list.
                    ErrorCode::NotPrimary => return SessionEnd::RetryRotate,
                    _ => return SessionEnd::Retry,
                }
            }
            Ok(ReadEvent::TimedOut) => {
                if last_progress.elapsed() >= cfg.ack_timeout {
                    return SessionEnd::Retry;
                }
            }
            Ok(ReadEvent::Message(_)) | Ok(ReadEvent::Corrupt(_)) | Ok(ReadEvent::Closed) => {
                return SessionEnd::Retry;
            }
            Err(_) => return SessionEnd::Retry,
        }
    };

    // The send queue for this session: the pending frames, mangled by
    // the plan's frame-level faults (reorder first, then duplication).
    let mut queue: Vec<WireItem> = pending.clone();
    if let Some(k) = plan.swap_every {
        let k = k.max(2) as usize;
        let mut i = k - 1;
        while i < queue.len() {
            queue.swap(i - 1, i);
            i += k;
        }
    }
    if let Some(k) = plan.duplicate_every {
        let k = k.max(1) as usize;
        let mut mangled = Vec::with_capacity(queue.len() * 2);
        for (i, item) in queue.into_iter().enumerate() {
            let dup = (i + 1) % k == 0;
            if dup {
                mangled.push(item.clone());
            }
            mangled.push(item);
        }
        queue = mangled;
    }

    let mut next = 0usize; // next queue slot to send
    let mut in_flight = 0usize;
    // Bound same-session retransmission so a frame the collector keeps
    // rejecting cannot ping-pong forever; past the cap we reconnect and
    // let `max_attempts` own the give-up decision.
    let mut retransmit_budget = 4 + 2 * pending.len();
    last_progress = Instant::now();
    loop {
        while in_flight < credits && next < queue.len() {
            let item = &queue[next];
            let batch = match item.round {
                None => Message::Batch {
                    epoch: item.epoch,
                    agent: cfg.agent_id,
                    frame: item.bytes.clone(),
                },
                Some(round) => Message::BatchDelta {
                    epoch: item.epoch,
                    round,
                    agent: cfg.agent_id,
                    frame: item.bytes.clone(),
                },
            };
            report.frames_sent += 1;
            report.bytes_on_wire += item.bytes.len() as u64;
            if send(&mut reader, &batch).is_err() {
                return SessionEnd::Retry;
            }
            next += 1;
            in_flight += 1;
        }
        if pending.is_empty() {
            let _ = send(&mut reader, &Message::Goodbye);
            return SessionEnd::Done;
        }
        match reader.read_event() {
            Ok(ReadEvent::Message(Message::Ack {
                epoch,
                outcome,
                term,
            })) => {
                last_progress = Instant::now();
                in_flight = in_flight.saturating_sub(1);
                if term < *term_seen {
                    // An ack stamped with a fenced term: a deposed
                    // primary answering after the fleet moved on. The
                    // frame stays pending — it will be retransmitted to
                    // the real primary, where the seen-guard keeps the
                    // replay exactly-once-effective.
                    report.stale_acks += 1;
                    continue;
                }
                *term_seen = term.max(*term_seen);
                if outcome == AckOutcome::Duplicate {
                    report.duplicates += 1;
                }
                if let Some(pos) = pending
                    .iter()
                    .position(|i| i.round.is_none() && i.epoch == epoch)
                {
                    pending.remove(pos);
                    report.frames_acked += 1;
                }
            }
            Ok(ReadEvent::Message(Message::AckDelta {
                epoch,
                round,
                outcome,
                term,
            })) => {
                last_progress = Instant::now();
                in_flight = in_flight.saturating_sub(1);
                if term < *term_seen {
                    report.stale_acks += 1;
                    continue;
                }
                *term_seen = term.max(*term_seen);
                if outcome == AckOutcome::Duplicate {
                    report.duplicates += 1;
                }
                if let Some(pos) = pending
                    .iter()
                    .position(|i| i.round == Some(round) && i.epoch == epoch)
                {
                    pending.remove(pos);
                    report.frames_acked += 1;
                }
            }
            Ok(ReadEvent::Message(Message::Error {
                code: ErrorCode::BadFrame,
                context,
                ..
            })) => {
                // The collector kept the connection; retransmit the
                // named epoch in-session when we can identify it. A
                // corrupt frame the collector could not decode arrives
                // as context 0 — its epoch never gets acked, so the
                // ack timeout below forces a reconnect that resends it.
                report.error_frames_seen += 1;
                in_flight = in_flight.saturating_sub(1);
                let hits: Vec<WireItem> = pending
                    .iter()
                    .filter(|i| i.epoch == context)
                    .cloned()
                    .collect();
                for item in hits {
                    if retransmit_budget == 0 {
                        return SessionEnd::Retry;
                    }
                    retransmit_budget -= 1;
                    report.retransmits += 1;
                    queue.push(item);
                }
            }
            Ok(ReadEvent::Message(Message::Error {
                code: ErrorCode::MissingBaseline,
                context,
                ..
            })) => {
                // A delta round arrived before its epoch's baseline was
                // absorbed (chain head reordered away, collector
                // restarted, or the epoch's guard state expired).
                // Resync: replay the retained round-0 baseline, then
                // every still-pending round of that epoch. Replays the
                // collector already absorbed come back as duplicates.
                report.error_frames_seen += 1;
                in_flight = in_flight.saturating_sub(1);
                let Some(baseline) = baselines.get(&context) else {
                    return SessionEnd::Retry;
                };
                if retransmit_budget == 0 {
                    return SessionEnd::Retry;
                }
                retransmit_budget -= 1;
                report.baseline_resyncs += 1;
                queue.push(WireItem {
                    epoch: context,
                    round: Some(0),
                    bytes: baseline.clone(),
                });
                let rounds: Vec<WireItem> = pending
                    .iter()
                    .filter(|i| i.epoch == context && i.round.is_some_and(|r| r > 0))
                    .cloned()
                    .collect();
                for item in rounds {
                    if retransmit_budget == 0 {
                        return SessionEnd::Retry;
                    }
                    retransmit_budget -= 1;
                    report.retransmits += 1;
                    queue.push(item);
                }
            }
            Ok(ReadEvent::Message(Message::Error {
                code: ErrorCode::Busy,
                context,
                ..
            })) => {
                // The collector shed a frame under overload: it was
                // dropped unacked. Sleep the advertised retry-after
                // hint (capped — the hint is advisory, not a command),
                // then resync with a fresh session; everything still
                // pending is retransmitted and replays land as guard
                // duplicates.
                report.error_frames_seen += 1;
                report.busy_backoffs += 1;
                std::thread::sleep(Duration::from_millis(context.min(1_000)));
                return SessionEnd::Retry;
            }
            Ok(ReadEvent::Message(Message::Error { code, detail, .. })) => {
                report.error_frames_seen += 1;
                match code {
                    ErrorCode::VersionMismatch
                    | ErrorCode::ConfigMismatch
                    | ErrorCode::EpochOutOfRange => {
                        return SessionEnd::Fatal(format!(
                            "collector rejected session ({code:?}): {detail}"
                        ));
                    }
                    ErrorCode::NotPrimary => return SessionEnd::RetryRotate,
                    _ => return SessionEnd::Retry,
                }
            }
            Ok(ReadEvent::Message(Message::Goodbye)) | Ok(ReadEvent::Closed) => {
                return SessionEnd::Retry;
            }
            Ok(ReadEvent::Message(_)) | Ok(ReadEvent::Corrupt(_)) => {
                // An undecodable or unexpected inbound frame: we cannot
                // tell what it acked, so resync with a fresh session.
                return SessionEnd::Retry;
            }
            Ok(ReadEvent::TimedOut) => {
                if last_progress.elapsed() >= cfg.ack_timeout {
                    return SessionEnd::Retry;
                }
            }
            Err(_) => return SessionEnd::Retry,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_capped_and_jittered() {
        let b = Backoff {
            base: Duration::from_millis(10),
            cap: Duration::from_millis(80),
            seed: 7,
        };
        let delays: Vec<Duration> = (0..8).map(|a| b.delay(a)).collect();
        assert_eq!(delays, (0..8).map(|a| b.delay(a)).collect::<Vec<_>>());
        for (i, d) in delays.iter().enumerate() {
            let exp = Duration::from_millis(10)
                .saturating_mul(1 << i.min(20))
                .min(Duration::from_millis(80));
            assert!(
                *d >= exp / 2 && *d <= exp,
                "delay {i} = {d:?} vs cap {exp:?}"
            );
        }
        // Different seeds give different jitter somewhere in the run.
        let other = Backoff {
            seed: 8,
            ..b.clone()
        };
        assert!((0..8).any(|a| b.delay(a) != other.delay(a)));
    }

    #[test]
    fn agent_gives_up_after_max_attempts() {
        let cfg = AgentConfig {
            max_attempts: 3,
            backoff: Backoff {
                base: Duration::from_micros(10),
                cap: Duration::from_micros(20),
                seed: 1,
            },
            ..AgentConfig::new(
                9,
                ConfigEcho {
                    n_max: 1000,
                    m: 100,
                    sampling_bits: 4,
                    seed: 1,
                    window: 2,
                    term: 0,
                },
            )
        };
        let frames = vec![(0u64, vec![1, 2, 3])];
        let mut tries = 0u32;
        let err = run_agent(&cfg, frames, |_attempt| {
            tries += 1;
            Err::<std::io::Cursor<Vec<u8>>, _>(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                "nobody home",
            ))
        })
        .unwrap_err();
        assert_eq!(tries, 3);
        assert!(err.contains("gave up after 3 attempts"), "{err}");
    }
}
