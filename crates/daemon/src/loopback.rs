//! End-to-end loopback harness: a daemon plus one TCP agent per shard,
//! on `127.0.0.1`, fed the exact frames the in-process pipeline
//! produces.
//!
//! This is the bridge the robustness suites and `bench-daemon` stand
//! on: [`sbitmap_stream::DeltaFrameSource`] generates each shard's v3
//! round chains through the same code path as
//! [`sbitmap_stream::run_windowed_pipeline_v3`]'s workers, so after a
//! drain the daemon's ring must match the in-process collector
//! **bit-for-bit** — estimates, fills and quantile summaries — no
//! matter which [`FaultPlan`] mangled the transport along the way.
//! Against a v2-only daemon ([`DaemonConfig::max_proto`] = 1) the
//! agents negotiate down and ship each epoch's full checkpoint instead.

use std::net::TcpStream;
use std::time::{Duration, Instant};

use sbitmap_stream::net::{Message, QueryReply, QueryRequest};
use sbitmap_stream::{DeltaFrameSource, FaultPlan, WindowedPipelineConfig};

use crate::agent::{
    query_once, run_agent_rounds, run_agent_rounds_failover, AgentConfig, AgentReport,
};
use crate::server::{Daemon, DaemonConfig, DaemonReport};

/// What [`run_loopback`] returns once the daemon has drained.
#[derive(Debug, Clone)]
pub struct LoopbackOutcome {
    /// The drained daemon's report (estimates + counters + checkpoint).
    pub report: DaemonReport,
    /// One report per shard agent, in shard order.
    pub agents: Vec<AgentReport>,
}

/// Run the full networked pipeline on loopback: start a daemon shaped
/// by `pcfg`'s sketch parameters, ship every shard's epoch frames
/// through a real TCP agent (shard `s` injecting `plans[s]`, clean when
/// `plans` is shorter), then drain and return the collector state.
///
/// The daemon's sketch fields (`n_max`, `m_bits`, `seed`, `window`) are
/// overwritten from `pcfg` so the two sides can never disagree; the
/// remaining knobs of `dcfg` (credits, queue bound, deadlines, paths)
/// are honored as given.
///
/// # Errors
///
/// Daemon start/join failures, an invalid `pcfg`, or an agent
/// exhausting its attempts.
pub fn run_loopback(
    pcfg: &WindowedPipelineConfig,
    dcfg: DaemonConfig,
    plans: &[FaultPlan],
) -> Result<LoopbackOutcome, String> {
    let dcfg = DaemonConfig {
        n_max: pcfg.n_max,
        m_bits: pcfg.m_bits,
        seed: pcfg.seed,
        window: pcfg.window,
        ..dcfg
    };
    let read_deadline = dcfg.read_deadline;
    let write_deadline = dcfg.write_deadline;
    let daemon = Daemon::start(dcfg)?;
    let echo = daemon.config_echo();
    let addr = daemon.ingest_addr();

    // Frame generation can fail (bad shard split) — do it before any
    // thread spawns so errors surface cleanly.
    let mut shard_frames = Vec::with_capacity(pcfg.shards);
    for shard in 0..pcfg.shards {
        shard_frames.push(DeltaFrameSource::new(pcfg, shard)?.collect_epochs());
    }

    let mut workers = Vec::with_capacity(pcfg.shards);
    for (shard, backlog) in shard_frames.into_iter().enumerate() {
        let plan = plans.get(shard).cloned().unwrap_or_default();
        let acfg = AgentConfig {
            plan,
            // Loopback acks arrive in microseconds; a short ack timeout
            // keeps fault-injected runs (lost frame → silent ack gap →
            // reconnect) fast without risking false timeouts.
            ack_timeout: (read_deadline * 10).max(Duration::from_millis(100)),
            ..AgentConfig::new(shard as u64 + 1, echo)
        };
        workers.push(std::thread::spawn(move || {
            run_agent_rounds(&acfg, backlog, |_attempt| {
                let stream = TcpStream::connect(addr)?;
                stream.set_nodelay(true)?;
                stream.set_read_timeout(Some(read_deadline.max(Duration::from_millis(1))))?;
                stream.set_write_timeout(Some(write_deadline))?;
                Ok(stream)
            })
        }));
    }
    let mut agents = Vec::with_capacity(workers.len());
    let mut first_err = None;
    for w in workers {
        match w.join().map_err(|_| "agent thread panicked".to_string())? {
            Ok(r) => agents.push(r),
            Err(e) => first_err = Some(e),
        }
    }
    // Drain regardless, so the daemon's threads never leak; then report
    // the first agent failure if any.
    daemon.drain();
    let report = daemon.join()?;
    if let Some(e) = first_err {
        return Err(e);
    }
    Ok(LoopbackOutcome { report, agents })
}

/// What [`run_loopback_replicated`] returns once both collectors have
/// drained.
#[derive(Debug, Clone)]
pub struct ReplicatedOutcome {
    /// The drained primary's report.
    pub primary: DaemonReport,
    /// The drained standby's report — its estimates must be
    /// bit-identical to the primary's (every acked frame was replicated
    /// before its ack left).
    pub standby: DaemonReport,
    /// One report per shard agent, in shard order.
    pub agents: Vec<AgentReport>,
}

/// Run the replicated pipeline on loopback: a primary, one standby
/// following it, and one failover-capable TCP agent per shard
/// configured with the ordered `[primary, standby]` address list.
///
/// The standby is attached (primary `Status` reports one peer) before
/// any agent starts, so every frame pays the full semi-synchronous
/// replication cost — which is exactly what `bench-daemon`'s
/// replication lane wants to measure.
///
/// # Errors
///
/// Daemon start/join failures, an invalid `pcfg`, the standby failing
/// to attach within 5 s, or an agent exhausting its attempts.
pub fn run_loopback_replicated(
    pcfg: &WindowedPipelineConfig,
    dcfg: DaemonConfig,
    plans: &[FaultPlan],
) -> Result<ReplicatedOutcome, String> {
    let primary_cfg = DaemonConfig {
        n_max: pcfg.n_max,
        m_bits: pcfg.m_bits,
        seed: pcfg.seed,
        window: pcfg.window,
        ..dcfg.clone()
    };
    let read_deadline = primary_cfg.read_deadline;
    let primary = Daemon::start(primary_cfg)?;
    let echo = primary.config_echo();
    let standby_cfg = DaemonConfig {
        n_max: pcfg.n_max,
        m_bits: pcfg.m_bits,
        seed: pcfg.seed,
        window: pcfg.window,
        standby_of: Some(primary.ingest_addr().to_string()),
        // A standby sharing the primary's data_dir would corrupt both;
        // replicated loopback keeps the standby in memory unless the
        // caller points it elsewhere via this harness growing a knob.
        data_dir: None,
        checkpoint_path: None,
        ..dcfg
    };
    let standby = Daemon::start(standby_cfg)?;
    wait_for_peers(&primary, 1, Duration::from_secs(5))?;

    let mut shard_frames = Vec::with_capacity(pcfg.shards);
    for shard in 0..pcfg.shards {
        shard_frames.push(DeltaFrameSource::new(pcfg, shard)?.collect_epochs());
    }
    let addrs = vec![
        primary.ingest_addr().to_string(),
        standby.ingest_addr().to_string(),
    ];
    let mut workers = Vec::with_capacity(pcfg.shards);
    for (shard, backlog) in shard_frames.into_iter().enumerate() {
        let plan = plans.get(shard).cloned().unwrap_or_default();
        let acfg = AgentConfig {
            plan,
            ack_timeout: (read_deadline * 10).max(Duration::from_millis(100)),
            ..AgentConfig::new(shard as u64 + 1, echo)
        };
        let addrs = addrs.clone();
        workers.push(std::thread::spawn(move || {
            run_agent_rounds_failover(
                &acfg,
                backlog,
                &addrs,
                Duration::from_millis(250),
                read_deadline.max(Duration::from_millis(1)),
            )
        }));
    }
    let mut agents = Vec::with_capacity(workers.len());
    let mut first_err = None;
    for w in workers {
        match w.join().map_err(|_| "agent thread panicked".to_string())? {
            Ok(r) => agents.push(r),
            Err(e) => first_err = Some(e),
        }
    }
    primary.drain();
    let primary_report = primary.join()?;
    standby.drain();
    let standby_report = standby.join()?;
    if let Some(e) = first_err {
        return Err(e);
    }
    Ok(ReplicatedOutcome {
        primary: primary_report,
        standby: standby_report,
        agents,
    })
}

/// Poll the primary's query port until its `Status` reports at least
/// `want` attached standbys.
fn wait_for_peers(primary: &Daemon, want: u64, timeout: Duration) -> Result<(), String> {
    let deadline = Instant::now() + timeout;
    loop {
        if let Ok(stream) = TcpStream::connect(primary.query_addr()) {
            let _ = stream.set_nodelay(true);
            let _ = stream.set_read_timeout(Some(Duration::from_millis(20)));
            if let Ok(Message::Reply(QueryReply::Status { peers, .. })) =
                query_once(stream, &QueryRequest::Status, Duration::from_millis(500))
            {
                if peers >= want {
                    return Ok(());
                }
            }
        }
        if Instant::now() >= deadline {
            return Err(format!("standby failed to attach within {timeout:?}"));
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}
