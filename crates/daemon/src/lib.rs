//! # sbitmap-daemon — `sbitmapd`, the networked §7.2 collector
//!
//! Everything below `sbitmap_stream::collector` moves sketch checkpoints
//! over in-process channels; this crate is the deployment story the
//! paper's §7.2 describes: **node agents on routers ship per-link epoch
//! sketches over TCP to a central collector daemon**, and the transport
//! is allowed to fail.
//!
//! The crate is std-only (no async runtime): the daemon is a small
//! accept loop plus thread-per-connection handlers over [`std::net`],
//! which is both dependency-free and exactly as much concurrency as a
//! collector for hundreds of links needs.
//!
//! * [`server`] — the daemon: handshake with protocol + config echo,
//!   framed batch ingest into a central
//!   [`sbitmap_core::WindowedFleet`], per-connection read/write
//!   deadlines, a bounded absorb queue that exerts backpressure on fast
//!   producers (and sheds with a typed `Busy` answer past a deadline),
//!   typed error frames instead of connection death, a query listener
//!   on a second port, and graceful drain with a final ring checkpoint
//!   to disk. With a data directory configured it is **crash-safe**:
//!   every absorbed frame is write-ahead journaled before its ack,
//!   periodic atomic snapshots truncate the journal, and a restart
//!   recovers the ring (snapshot restore + journal replay) — see
//!   `docs/recovery.md` and the kill-and-recover suite in
//!   `tests/crash.rs`.
//! * [`agent`] — the node agent: ships a shard's epoch frames (full v2
//!   checkpoints or v3 delta round chains) with a credit window,
//!   reconnects with capped exponential backoff and deterministic
//!   seeded jitter, resumes from the last acked frame (at-least-once —
//!   the collector's absorb guard makes replays no-ops), retains each
//!   epoch's round-0 baseline so a `MissingBaseline` answer triggers a
//!   resync, and bounds its local backlog while the collector is away.
//! * [`loopback`] — the end-to-end harness: daemon + one agent per
//!   shard on loopback TCP, used by the robustness property suites and
//!   `bench-daemon` to lock the networked pipeline **bit-identical** to
//!   the in-process [`sbitmap_stream::run_windowed_pipeline`].
//!
//! Fault injection lives in [`sbitmap_stream::fault`]: agents accept a
//! [`sbitmap_stream::FaultPlan`] and wrap their own transport, so every
//! failure mode (cut, stall, corrupt, duplicate, reorder) is exercised
//! through the exact production code path.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod agent;
pub mod loopback;
mod replica;
pub mod server;

pub use agent::{
    query_once, run_agent, run_agent_rounds, run_agent_rounds_failover, AgentConfig, AgentReport,
    Backoff,
};
pub use loopback::{run_loopback, run_loopback_replicated, LoopbackOutcome, ReplicatedOutcome};
pub use server::{CrashPoint, CrashSite, Daemon, DaemonConfig, DaemonReport};
