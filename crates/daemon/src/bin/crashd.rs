//! Crash-harness collector: an `sbitmapd` instance configured entirely
//! from `CRASHD_*` environment variables, used by the kill-and-recover
//! suite (`tests/crash.rs`) as the child process it aborts and restarts.
//!
//! Protocol on stdout, one token per line:
//!
//! * `INGEST <addr>` / `QUERY <addr>` — the bound listener addresses.
//! * `READY` — printed only after startup recovery has finished, so the
//!   parent knows the ring reflects the journal.
//! * `REPORT replayed=<n> skipped=<n> journal=<n> snapshots=<n>` and
//!   `DRAINED` — printed after a graceful drain completes.
//!
//! When a `CRASHD_CRASH_SITE`/`CRASHD_CRASH_AFTER` pair is set the
//! configured [`CrashPoint`] aborts the process mid-pipeline; the
//! parent observes the non-zero exit and restarts with the same data
//! directory and no crash point.
//!
//! With `CRASHD_STANDBY_OF=<addr>` the instance starts as a standby
//! following that primary (the failover suite promotes it later via
//! `QueryRequest::Promote` on the query port); `CRASHD_INITIAL_TERM`
//! seeds the term counter.

use std::io::Write;
use std::time::Duration;

use sbitmap_daemon::{CrashPoint, CrashSite, Daemon, DaemonConfig};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let data_dir = std::env::var("CRASHD_DATA_DIR").expect("CRASHD_DATA_DIR is required");
    let crash_point = std::env::var("CRASHD_CRASH_SITE").ok().map(|site| {
        let site = match site.as_str() {
            "absorb-before-journal" => CrashSite::AbsorbBeforeJournal,
            "mid-journal-append" => CrashSite::MidJournalAppend,
            "mid-snapshot-write" => CrashSite::MidSnapshotWrite,
            "after-snapshot-rename" => CrashSite::AfterSnapshotRename,
            "after-replicate" => CrashSite::AfterReplicate,
            other => panic!("unknown CRASHD_CRASH_SITE {other:?}"),
        };
        CrashPoint {
            site,
            after: env_u64("CRASHD_CRASH_AFTER", 1),
        }
    });
    let cfg = DaemonConfig {
        n_max: env_u64("CRASHD_N_MAX", 50_000),
        m_bits: env_u64("CRASHD_M_BITS", 2_000) as usize,
        seed: env_u64("CRASHD_SEED", 7),
        window: env_u64("CRASHD_WINDOW", 3) as usize,
        data_dir: Some(data_dir.into()),
        snapshot_every: env_u64("CRASHD_SNAPSHOT_EVERY", 3),
        crash_point,
        standby_of: std::env::var("CRASHD_STANDBY_OF").ok(),
        initial_term: env_u64("CRASHD_INITIAL_TERM", 1),
        read_deadline: Duration::from_millis(10),
        idle_limit: Duration::from_secs(5),
        ..DaemonConfig::default()
    };
    let daemon = Daemon::start(cfg).expect("daemon start");
    // Wait out the replay before announcing readiness: the parent's
    // equivalence checks must see the recovered ring, never a partial
    // one (handshakes would be refused with `Recovering` anyway).
    while daemon.is_recovering() {
        std::thread::sleep(Duration::from_millis(2));
    }
    let mut out = std::io::stdout();
    writeln!(out, "INGEST {}", daemon.ingest_addr()).unwrap();
    writeln!(out, "QUERY {}", daemon.query_addr()).unwrap();
    writeln!(out, "READY").unwrap();
    out.flush().unwrap();
    // Serve until a remote `QueryRequest::Drain` flips the flag (or the
    // configured crash point aborts us first).
    while !daemon.is_draining() {
        std::thread::sleep(Duration::from_millis(5));
    }
    let report = daemon.join().expect("daemon join");
    writeln!(
        out,
        "REPORT replayed={} skipped={} journal={} snapshots={} term={} replicated={}",
        report.replayed_records,
        report.replay_skipped,
        report.journal_records,
        report.snapshots,
        report.term,
        report.replicated_frames
    )
    .unwrap();
    writeln!(out, "DRAINED").unwrap();
    out.flush().unwrap();
}
