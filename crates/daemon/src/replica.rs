//! The standby side of collector replication: a client that follows a
//! primary's record stream and folds it into the local ring + journal.
//!
//! The standby dials the primary's *ingest* listener with a
//! `Role::Replicate` hello. The primary answers with a catch-up
//! `ReplicateSnapshot` (a full ring checkpoint), then ships every
//! subsequently journaled record as a `Replicate` frame — the exact
//! `SBJR` bytes it appended to its own segment. Each record is decoded,
//! routed through the absorber's job queue (the single-writer
//! discipline is preserved: the replication client never touches the
//! ring directly), journaled locally, and only then acknowledged with
//! `ReplicateAck` — so the primary's "acked ⇒ replicated" guarantee
//! means *durable on the standby*, not just received.
//!
//! Records ride the replay absorb path (`absorb_delta_replay`): the
//! primary's journal order already proved every delta chain, and the
//! chain's baseline may live only inside the catch-up snapshot here.
//! Overlap between the snapshot and the stream replays as OR-idempotent
//! duplicates, which is what makes the whole scheme bit-identical.
//!
//! The client runs until promotion fences it (`standby_stop`) or the
//! daemon drains; connection loss reconnects with capped backoff and a
//! fresh snapshot.

use std::collections::VecDeque;
use std::io::Write;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

use sbitmap_core::codec::{self, Checkpoint};
use sbitmap_core::journal;
use sbitmap_core::{CounterKind, FleetArena, FleetDeltaFrame};
use sbitmap_stream::net::{self, FrameReader, Message, ReadEvent, Role, PROTO_VERSION};

use crate::server::{FrameJob, Job, JobPayload, Shared};

/// Ceiling of the reconnect backoff between follow attempts.
const MAX_BACKOFF: Duration = Duration::from_secs(1);

/// How one follow session ended.
enum FollowEnd {
    /// Promotion or drain: the client must exit for good.
    Stopped,
    /// Connection-level failure: reconnect with backoff.
    Retry,
}

/// Run the replication client until promotion or drain. Spawned by
/// `Daemon::start` when `DaemonConfig::standby_of` is set.
pub(crate) fn run_standby(shared: &Arc<Shared>, job_tx: &mpsc::SyncSender<Job>) {
    let Some(addr) = shared.cfg.standby_of.clone() else {
        return;
    };
    let mut backoff = Duration::from_millis(50);
    while !shared.replica_stopped() {
        match follow_once(shared, &addr, job_tx) {
            FollowEnd::Stopped => return,
            FollowEnd::Retry => {
                sleep_responsive(shared, backoff);
                backoff = (backoff * 2).min(MAX_BACKOFF);
            }
        }
    }
}

/// Sleep `total`, waking early when the client must stop.
fn sleep_responsive(shared: &Shared, total: Duration) {
    let tick = shared.cfg.read_deadline.max(Duration::from_millis(5));
    let mut slept = Duration::ZERO;
    while slept < total && !shared.replica_stopped() {
        let step = tick.min(total - slept);
        std::thread::sleep(step);
        slept += step;
    }
}

/// One connect → handshake → follow session against the primary.
fn follow_once(shared: &Arc<Shared>, addr: &str, job_tx: &mpsc::SyncSender<Job>) -> FollowEnd {
    let Some(sock_addr) = addr.to_socket_addrs().ok().and_then(|mut a| a.next()) else {
        return FollowEnd::Retry;
    };
    let Ok(stream) = TcpStream::connect_timeout(&sock_addr, shared.cfg.replication_timeout) else {
        return FollowEnd::Retry;
    };
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.cfg.read_deadline));
    let _ = stream.set_write_timeout(Some(shared.cfg.write_deadline));
    let mut reader = FrameReader::new(stream);
    let hello = Message::Hello {
        proto: PROTO_VERSION,
        role: Role::Replicate,
        agent: shared.cfg.replica_id,
        config: shared.echo.with_term(shared.term()),
    };
    if send(&mut reader, &hello).is_err() {
        return FollowEnd::Retry;
    }
    // Await the Welcome: adopt the primary's term, verify the sketch
    // configuration (the term field is negotiated, never compared).
    let mut idle = Duration::ZERO;
    loop {
        if shared.replica_stopped() {
            return FollowEnd::Stopped;
        }
        match reader.read_event() {
            Ok(ReadEvent::Message(Message::Welcome { config, .. })) => {
                if !config.agrees_with(&shared.echo) {
                    // A foreign primary: absorbing its frames would
                    // corrupt estimates. Back off and retry — the
                    // operator may repoint us.
                    return FollowEnd::Retry;
                }
                if config.term < shared.term() {
                    // Stale primary (our term moved past its own): do
                    // not follow it backwards.
                    return FollowEnd::Retry;
                }
                shared.observe_term(config.term);
                break;
            }
            Ok(ReadEvent::Message(Message::Error { .. })) => return FollowEnd::Retry,
            Ok(ReadEvent::Message(_)) => return FollowEnd::Retry,
            Ok(ReadEvent::TimedOut) => {
                idle += shared.cfg.read_deadline;
                if idle >= shared.cfg.idle_limit {
                    return FollowEnd::Retry;
                }
            }
            Ok(ReadEvent::Corrupt(_)) | Ok(ReadEvent::Closed) | Err(_) => {
                return FollowEnd::Retry;
            }
        }
    }
    follow_stream(shared, &mut reader, job_tx)
}

/// The post-handshake follow loop: snapshot, then records.
///
/// The loop is pipelined and fully event-driven: each decoded record is
/// queued to the absorber immediately (the bounded job queue is the
/// only backpressure) and its seq joins a FIFO shared with a dedicated
/// *ack pump* thread. The absorber completes jobs in queue order, so
/// the pump — blocked on the completion channel, writing on a cloned
/// handle of the same socket — turns every completion into the FIFO
/// head's `ReplicateAck` the moment it lands, while this loop stays
/// parked in `read_event` pulling the next records off the wire. No
/// polling ticks anywhere: reads wake on bytes, acks wake on absorbs.
fn follow_stream(
    shared: &Arc<Shared>,
    reader: &mut FrameReader<TcpStream>,
    job_tx: &mpsc::SyncSender<Job>,
) -> FollowEnd {
    let (ack_tx, ack_rx) = mpsc::channel::<Message>();
    let fifo = Arc::new(Mutex::new(VecDeque::<u64>::new()));
    let failed = Arc::new(AtomicBool::new(false));
    let Ok(write_half) = reader.inner_mut().try_clone() else {
        return FollowEnd::Retry;
    };
    let pump = {
        let shared = shared.clone();
        let fifo = fifo.clone();
        let failed = failed.clone();
        std::thread::spawn(move || ack_pump(&shared, write_half, &fifo, &failed, &ack_rx))
    };
    let end = follow_reads(shared, reader, job_tx, &ack_tx, &fifo, &failed);
    // The pump owns the last word on the socket: drop our completion
    // sender so it drains the in-flight absorbs (the absorber completes
    // everything already queued) and exits, then say goodbye.
    drop(ack_tx);
    let _ = pump.join();
    if matches!(end, FollowEnd::Stopped) {
        let _ = send(reader, &Message::Goodbye);
    }
    end
}

/// The follow loop's read half: decode, fence, queue to the absorber,
/// and hand each record's seq to the ack pump.
fn follow_reads(
    shared: &Arc<Shared>,
    reader: &mut FrameReader<TcpStream>,
    job_tx: &mpsc::SyncSender<Job>,
    ack_tx: &mpsc::Sender<Message>,
    fifo: &Mutex<VecDeque<u64>>,
    failed: &AtomicBool,
) -> FollowEnd {
    loop {
        if shared.replica_stopped() {
            return FollowEnd::Stopped;
        }
        if failed.load(Ordering::SeqCst) {
            // The pump hit a write fault or an absorb error: the
            // primary will stop hearing acks either way — resync.
            return FollowEnd::Retry;
        }
        match reader.read_event() {
            Ok(ReadEvent::Message(Message::ReplicateSnapshot { term, frame })) => {
                if term < shared.term() {
                    return FollowEnd::Retry;
                }
                shared.observe_term(term);
                let (done_tx, done_rx) = mpsc::channel();
                if job_tx
                    .send(Job::InstallSnapshot {
                        bytes: frame,
                        done: done_tx,
                    })
                    .is_err()
                {
                    return FollowEnd::Retry;
                }
                match wait_done(shared, &done_rx) {
                    Some(Ok(())) => {}
                    Some(Err(_)) | None => return FollowEnd::Retry,
                }
            }
            Ok(ReadEvent::Message(Message::Replicate { seq, term, record })) => {
                if term < shared.term() {
                    // The stream belongs to a fenced term — ours moved
                    // on (promotion raced this read). Never absorb it.
                    return FollowEnd::Retry;
                }
                shared.observe_term(term);
                let Ok(rec) = journal::decode_record(&record) else {
                    // A record that fails its own checksum is a
                    // transport-level fault; resync from scratch.
                    return FollowEnd::Retry;
                };
                let Ok(payload) = decode_payload(&rec) else {
                    return FollowEnd::Retry;
                };
                // The seq joins the FIFO *before* the job is queued so
                // the pump can never see a completion without its seq.
                fifo.lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .push_back(seq);
                if job_tx
                    .send(Job::Frame(FrameJob {
                        epoch: rec.epoch,
                        agent: rec.source,
                        payload,
                        wire: rec.payload,
                        replay: true,
                        ack: ack_tx.clone(),
                    }))
                    .is_err()
                {
                    fifo.lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .pop_back();
                    return FollowEnd::Retry;
                }
            }
            Ok(ReadEvent::Message(Message::Goodbye)) | Ok(ReadEvent::Closed) => {
                return FollowEnd::Retry;
            }
            Ok(ReadEvent::Message(Message::Error { .. })) => return FollowEnd::Retry,
            Ok(ReadEvent::Message(_)) => {}
            Ok(ReadEvent::TimedOut) => {}
            Ok(ReadEvent::Corrupt(_)) | Err(_) => return FollowEnd::Retry,
        }
    }
}

/// The standby's ack writer: blocked on the absorber's completion
/// channel, it answers each finished absorb with the in-flight FIFO
/// head's `ReplicateAck` on its own handle of the follow socket. Any
/// write fault, absorb error, or bookkeeping mismatch raises `failed`
/// and stops the pump — the read half notices and resyncs.
fn ack_pump(
    shared: &Shared,
    mut write_half: TcpStream,
    fifo: &Mutex<VecDeque<u64>>,
    failed: &AtomicBool,
    ack_rx: &mpsc::Receiver<Message>,
) {
    'pump: for msg in ack_rx {
        // Acks are cumulative on the primary: batch every completion
        // already in the channel into one `ReplicateAck` carrying the
        // newest settled seq — one write per wakeup, not per frame.
        let mut done = 1usize;
        let ok = |m: &Message| matches!(m, Message::Ack { .. } | Message::AckDelta { .. });
        if !ok(&msg) {
            // A typed absorb error: the record is not durable here.
            // Withhold the ack; the primary times out, drops us, and
            // we resync via snapshot.
            failed.store(true, Ordering::SeqCst);
            return;
        }
        loop {
            match ack_rx.try_recv() {
                Ok(m) if ok(&m) => done += 1,
                Ok(_) => {
                    failed.store(true, Ordering::SeqCst);
                    return;
                }
                Err(_) => break,
            }
        }
        let mut seq = None;
        {
            let mut fifo = fifo
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            for _ in 0..done {
                seq = fifo.pop_front();
                if seq.is_none() {
                    failed.store(true, Ordering::SeqCst);
                    return;
                }
                shared.note_replicated();
            }
        }
        let Some(seq) = seq else { continue 'pump };
        let reply = Message::ReplicateAck {
            seq,
            term: shared.term(),
        };
        if write_half.write_all(&net::encode(&reply)).is_err() {
            failed.store(true, Ordering::SeqCst);
            return;
        }
    }
}

/// Wait for the absorber to finish a snapshot install; `None` means the
/// client must exit.
fn wait_done(
    shared: &Shared,
    done_rx: &mpsc::Receiver<Result<(), String>>,
) -> Option<Result<(), String>> {
    let tick = shared.cfg.read_deadline.max(Duration::from_millis(5));
    loop {
        match done_rx.recv_timeout(tick) {
            Ok(result) => return Some(result),
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if shared.replica_stopped() {
                    return None;
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => return Some(Err("absorber gone".into())),
        }
    }
}

/// Decode a replicated record's sketch payload the same way the ingest
/// path does, refusing envelopes that disagree with their contents.
fn decode_payload(rec: &journal::JournalRecord) -> Result<JobPayload, ()> {
    let (_, kind) = codec::peek_kind(&rec.payload).map_err(|_| ())?;
    match kind {
        CounterKind::SketchFleet => {
            let fleet = <FleetArena as Checkpoint>::restore(&rec.payload).map_err(|_| ())?;
            Ok(JobPayload::Full(Box::new(fleet)))
        }
        CounterKind::FleetDelta => {
            let frame = FleetDeltaFrame::decode(&rec.payload).map_err(|_| ())?;
            if frame.epoch != rec.epoch {
                return Err(());
            }
            Ok(JobPayload::Delta(frame))
        }
        _ => Err(()),
    }
}

/// Write one frame directly on the socket (the client is synchronous:
/// one in-flight record, acks from the same loop).
fn send(reader: &mut FrameReader<TcpStream>, msg: &Message) -> std::io::Result<()> {
    reader.inner_mut().write_all(&net::encode(msg))
}
