//! The collector daemon: TCP ingest + query listeners over a central
//! [`WindowedFleet`] ring.
//!
//! Concurrency layout (all std threads, no async runtime):
//!
//! ```text
//! ingest accept loop ──spawns──▶ per-connection handler
//!                                  ├─ reader (the handler thread):
//!                                  │    handshake, decode batches,
//!                                  │    push absorb jobs
//!                                  └─ writer thread: acks + errors
//! query accept loop  ──spawns──▶ per-connection request/reply handler
//! absorber thread    ◀── bounded sync_channel of decoded jobs
//! ```
//!
//! The **bounded absorb queue is the backpressure mechanism**: when the
//! absorber falls behind, `try_send` fails, the handler counts a
//! backpressure event and falls back to a blocking send — which stops it
//! reading its socket, which fills the kernel receive buffer, which
//! stalls the remote agent's sends. Flow control composes out of
//! `sync_channel` + TCP, no protocol machinery needed beyond the credit
//! window advertised in the handshake.
//!
//! Failure policy per the wire spec: a frame that fails its checksum or
//! payload validation is answered with a typed [`Message::Error`] frame
//! and the connection lives on; only a desynchronized byte stream (bad
//! magic, absurd length, EOF mid-frame) closes the connection, because
//! after desync no frame boundary can be trusted.

use std::collections::{HashMap, VecDeque};
use std::io::{BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sbitmap_core::codec::{self, Checkpoint};
use sbitmap_core::journal::{self, JournalConfig, JournalRecord, JournalWriter};
use sbitmap_core::{
    AbsorbOutcome, CounterKind, FleetArena, FleetDeltaFrame, KeyedEstimates, RateSchedule,
    SBitmapError, WindowedFleet,
};
use sbitmap_stream::net::{
    ConfigEcho, ErrorCode, FrameReader, Message, NetError, NodeRole, QueryReply, QueryRequest,
    ReadEvent, Role, PROTO_VERSION,
};
use sbitmap_stream::quantile_summary;

/// Largest forward epoch jump a batch frame may demand. The ring
/// advances one rotation at a time, so an unbounded hostile epoch would
/// be a CPU DoS; no healthy agent ever runs this far ahead of the
/// collector.
const MAX_EPOCH_JUMP: u64 = 1 << 20;

/// How long the accept loops sleep between polls of the shutdown flag
/// when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// How long a handler sleeps between retries while the absorb queue is
/// full, before the [`DaemonConfig::busy_timeout`] deadline sheds the
/// frame with a typed [`ErrorCode::Busy`] answer.
const BUSY_POLL: Duration = Duration::from_millis(1);

/// How many journal records a standby sender session keeps in flight:
/// records go on the wire as soon as the completer queues them, acks
/// settle in order. A peer whose queue backs up this far is hopelessly
/// behind and gets dropped (it re-syncs from a snapshot on reconnect).
const REPL_PIPELINE: usize = 64;

/// Where the absorber deliberately dies when a [`CrashPoint`] fires —
/// each site models one step of the durability pipeline being cut by a
/// `kill -9`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashSite {
    /// After the frame is folded into the in-memory ring but before its
    /// journal record is written: the crash loses the frame entirely
    /// (it was never acked, so the agent retransmits it).
    AbsorbBeforeJournal,
    /// Halfway through the journal append: the segment is left with a
    /// torn tail record that recovery must discard by checksum.
    MidJournalAppend,
    /// Halfway through writing the snapshot temp file: recovery must
    /// ignore the partial `.tmp` and fall back to the previous
    /// snapshot + journal.
    MidSnapshotWrite,
    /// After the snapshot is atomically in place (and the journal has
    /// rotated) but before the covered segments are deleted: recovery
    /// must replay the stale segments as no-ops.
    AfterSnapshotRename,
    /// After the frame's journal record has been shipped to (and acked
    /// by) every attached standby, but before the agent's ack leaves:
    /// the standby holds the frame, the agent retransmits it after
    /// failover, and the seen-guard absorbs the replay as a duplicate.
    AfterReplicate,
}

/// Test hook: abort the process (no unwinding, no flushes — the moral
/// equivalent of `SIGKILL` landing mid-operation) at a deterministic
/// point of the durability pipeline. `after` counts absorbed frames for
/// the absorb/journal sites and snapshots for the snapshot sites; the
/// crash fires when the count reaches it (1-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPoint {
    /// Which pipeline step to die in.
    pub site: CrashSite,
    /// Fire on the `after`-th event at that site (1-based).
    pub after: u64,
}

/// Configuration of one daemon instance.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Ingest listener address (`127.0.0.1:0` picks a free port).
    pub ingest_addr: String,
    /// Query listener address.
    pub query_addr: String,
    /// Per-key design maximum cardinality.
    pub n_max: u64,
    /// Bits per key per epoch.
    pub m_bits: usize,
    /// Fleet seed.
    pub seed: u64,
    /// Window span in epochs.
    pub window: usize,
    /// Credit window advertised to agents: batch frames an agent may
    /// leave unacked before it must stop sending.
    pub credits: u32,
    /// Bound of the absorb queue, in decoded frames — the backpressure
    /// knob.
    pub queue_frames: usize,
    /// Per-connection read deadline; doubles as the shutdown-flag poll
    /// interval of blocked reads.
    pub read_deadline: Duration,
    /// Per-connection write deadline.
    pub write_deadline: Duration,
    /// A connection idle longer than this is closed.
    pub idle_limit: Duration,
    /// Where the final ring checkpoint is written on drain; `None`
    /// skips the write. The write is atomic (temp file + fsync +
    /// rename), so a crash mid-drain can never leave a truncated
    /// checkpoint a later restore would trust.
    pub checkpoint_path: Option<PathBuf>,
    /// Durability root: when set, every absorbed frame is appended to a
    /// write-ahead journal under this directory *before* it is acked,
    /// periodic atomic snapshots truncate the journal, and a restart
    /// with the same directory recovers the ring (snapshot + journal
    /// replay) instead of starting empty. `None` keeps the ring purely
    /// in memory (the pre-durability behavior).
    pub data_dir: Option<PathBuf>,
    /// Absorbed frames between periodic snapshots (journal rotation
    /// points). 0 disables periodic snapshots — the journal then only
    /// truncates on graceful drain.
    pub snapshot_every: u64,
    /// When true, every journal append is fsynced before the frame is
    /// acked (power-loss durability). The default `false` flushes
    /// appends to the OS page cache only — that already survives a
    /// process crash (`kill -9`), which is what the crash harness
    /// proves, at a fraction of the cost. Snapshots are always fsynced.
    pub fsync_journal: bool,
    /// How long an ingest handler may wait on the full absorb queue
    /// before shedding the frame with a typed [`ErrorCode::Busy`] answer
    /// (carrying a retry-after hint) instead of stalling the socket
    /// indefinitely.
    pub busy_timeout: Duration,
    /// Test hook: deterministically abort the process at a chosen point
    /// of the durability pipeline (see [`CrashPoint`]). `None` in
    /// production.
    pub crash_point: Option<CrashPoint>,
    /// Test hook: the absorber sleeps this long per frame, so the suite
    /// can force the bounded queue to fill and observe backpressure
    /// deterministically. Zero in production.
    pub absorb_stall: Duration,
    /// Highest protocol version this daemon speaks — the handshake
    /// answers `min(client, max_proto)`. Production leaves this at
    /// [`PROTO_VERSION`]; tests pin it to 1 to exercise a v2-only
    /// collector against delta-capable agents.
    pub max_proto: u16,
    /// Standby mode: follow the primary whose *ingest* address this is.
    /// The daemon starts as a standby — it refuses ingest sessions with
    /// [`ErrorCode::NotPrimary`] until promoted, and runs a replication
    /// client that absorbs + journals the primary's record stream.
    /// `None` starts as a primary.
    pub standby_of: Option<String>,
    /// The fencing term this collector starts at when its journal holds
    /// no higher one. Primaries default to 1; standbys adopt the
    /// primary's term at the replication handshake and bump it on
    /// promotion.
    pub initial_term: u64,
    /// How long the primary waits for a standby to acknowledge one
    /// replicated record before declaring the standby dead and dropping
    /// it from the stream. Acked-implies-replicated holds for every
    /// standby still attached; a dropped standby re-syncs from a fresh
    /// snapshot when it reconnects.
    pub replication_timeout: Duration,
    /// Identity this collector presents when it dials a primary as a
    /// replication client (the journal `source` field is per-record, so
    /// this only names the session in primary-side accounting).
    pub replica_id: u64,
    /// Test hook: an Estimate query for this key panics the handler
    /// thread *while it holds the ring lock* — the regression fixture
    /// proving a poisoned ring mutex cannot wedge later ingest. `None`
    /// in production.
    pub panic_on_query: Option<u64>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        Self {
            ingest_addr: "127.0.0.1:0".into(),
            query_addr: "127.0.0.1:0".into(),
            n_max: 1_500_000,
            m_bits: 8_000,
            seed: 0xc011,
            window: 8,
            credits: 4,
            queue_frames: 64,
            read_deadline: Duration::from_millis(50),
            write_deadline: Duration::from_millis(2_000),
            idle_limit: Duration::from_secs(10),
            checkpoint_path: None,
            data_dir: None,
            snapshot_every: 1_024,
            fsync_journal: false,
            busy_timeout: Duration::from_secs(2),
            crash_point: None,
            absorb_stall: Duration::ZERO,
            max_proto: PROTO_VERSION,
            standby_of: None,
            initial_term: 1,
            replication_timeout: Duration::from_secs(2),
            replica_id: 0xEDD1,
            panic_on_query: None,
        }
    }
}

/// Counters the daemon accumulates while serving (all monotone).
#[derive(Debug, Default)]
struct Stats {
    connections: AtomicU64,
    frames_absorbed: AtomicU64,
    duplicates: AtomicU64,
    expired: AtomicU64,
    bad_frames: AtomicU64,
    backpressure_events: AtomicU64,
    handshake_rejects: AtomicU64,
    desyncs: AtomicU64,
    queries: AtomicU64,
    bytes_on_wire: AtomicU64,
    missing_baselines: AtomicU64,
    busy_rejections: AtomicU64,
    journal_records: AtomicU64,
    snapshots: AtomicU64,
    replayed_records: AtomicU64,
    replay_skipped: AtomicU64,
    replicated_frames: AtomicU64,
    replica_drops: AtomicU64,
    not_primary_rejects: AtomicU64,
}

/// What [`Daemon::join`] returns after a graceful drain.
#[derive(Debug, Clone)]
pub struct DaemonReport {
    /// `(key, windowed estimate)` pairs, ascending key order.
    pub estimates: Vec<(u64, f64)>,
    /// The ring's open epoch at drain.
    pub final_epoch: u64,
    /// The complete tag-10 checkpoint of the drained ring (also written
    /// to [`DaemonConfig::checkpoint_path`] when set).
    pub final_checkpoint: Vec<u8>,
    /// Ingest + query connections accepted.
    pub connections: u64,
    /// Batch frames folded into the ring.
    pub frames_absorbed: u64,
    /// Batch frames skipped by the at-least-once guard.
    pub duplicates: u64,
    /// Batch frames for already-expired epochs.
    pub expired: u64,
    /// Frames answered with a typed error instead of being absorbed.
    pub bad_frames: u64,
    /// Times a handler found the absorb queue full and had to block.
    pub backpressure_events: u64,
    /// Handshakes rejected (version or config mismatch).
    pub handshake_rejects: u64,
    /// Connections dropped for stream desynchronization.
    pub desyncs: u64,
    /// Query requests answered.
    pub queries: u64,
    /// Total sketch-frame bytes received over ingest sessions (the
    /// payload of every `Batch`/`BatchDelta`, before decoding) — the
    /// number the v3 delta encoding exists to shrink.
    pub bytes_on_wire: u64,
    /// Delta frames rejected because their epoch's round-0 baseline had
    /// not been absorbed (each one told the agent to resync).
    pub missing_baselines: u64,
    /// Frames shed with a typed [`ErrorCode::Busy`] answer because the
    /// absorb queue stayed full past [`DaemonConfig::busy_timeout`].
    pub busy_rejections: u64,
    /// Write-ahead journal records appended (one per absorbed frame
    /// when [`DaemonConfig::data_dir`] is set).
    pub journal_records: u64,
    /// Periodic ring snapshots written (journal rotations).
    pub snapshots: u64,
    /// Journal records replayed into the ring during startup recovery.
    pub replayed_records: u64,
    /// Journal records skipped during recovery (undecodable payloads,
    /// epochs the restored ring cannot accept) — each skip left the
    /// ring untouched.
    pub replay_skipped: u64,
    /// The fencing term the collector held at drain.
    pub term: u64,
    /// Journal records replicated: on a primary, per-standby shipped
    /// *and acknowledged* sends; on a standby, records absorbed from
    /// the primary's stream.
    pub replicated_frames: u64,
    /// Standby sessions dropped for missing the replication-ack
    /// deadline (each re-syncs from a snapshot when it reconnects).
    pub replica_drops: u64,
    /// Ingest/replication handshakes refused with
    /// [`ErrorCode::NotPrimary`] while this collector was a standby.
    pub not_primary_rejects: u64,
    /// Connection-handler threads that panicked. The daemon survives
    /// them — the ring lock recovers from poisoning because absorbs are
    /// atomic per frame — but a nonzero count is worth alerting on.
    pub handler_panics: u64,
}

/// The sketch payload of one decoded ingest frame.
pub(crate) enum JobPayload {
    /// A full v2 `sketch-fleet` checkpoint.
    Full(Box<FleetArena>),
    /// One round of a v3 delta chain (the wire `round` is validated
    /// against the frame before queueing).
    Delta(FleetDeltaFrame),
}

/// One unit of work queued for the absorber (the single ring writer).
pub(crate) enum Job {
    /// A decoded batch frame from an ingest session or, on a standby,
    /// one record from the primary's replication stream.
    Frame(FrameJob),
    /// Standby catch-up: replace the whole ring with the primary's
    /// checkpoint and reset the local journal underneath it.
    InstallSnapshot {
        /// A complete tag-10 window checkpoint frame.
        bytes: Vec<u8>,
        /// Where to report success/failure.
        done: mpsc::Sender<Result<(), String>>,
    },
}

/// A decoded batch frame queued for the absorber.
pub(crate) struct FrameJob {
    pub(crate) epoch: u64,
    pub(crate) agent: u64,
    pub(crate) payload: JobPayload,
    /// The frame exactly as it arrived on the wire — what the journal
    /// records, so replay decodes the same bytes the live path did.
    pub(crate) wire: Vec<u8>,
    /// Replay semantics: replicated records skip the live delta
    /// baseline check (the primary's journal order already proved the
    /// chain, but the baseline may live only inside the catch-up
    /// snapshot here).
    pub(crate) replay: bool,
    pub(crate) ack: mpsc::Sender<Message>,
}

/// A standby attached to this primary. The completer encodes
/// `Replicate` frames straight onto `out` — the session's writer-thread
/// queue — so shipping a record costs one channel send, no relay hop.
struct ReplPeer {
    id: u64,
    out: mpsc::Sender<Message>,
    /// Cleared by the completer when it detaches the peer (deadline
    /// miss, hopeless backlog); the session's read loop notices within
    /// one read deadline and closes the connection.
    alive: Arc<AtomicBool>,
}

/// Everything that can wake the completer. Unifying absorber output and
/// peer-session acknowledgements on one channel keeps the completer
/// event-driven — it never has to poll two sources, so a finished
/// absorb ships to the standbys immediately and a standby ack releases
/// its agent ack immediately.
enum CompleterEvent {
    /// The absorber finished a frame: ship `record` (if any) and hold
    /// the ack until every attached standby confirms.
    Complete(Complete),
    /// A peer session read a (cumulative) `ReplicateAck`: every record
    /// shipped to `peer` with wire seq ≤ `acked` is on the standby.
    PeerAck { peer: u64, acked: u64 },
    /// A peer session died; everything still in flight on it failed.
    PeerGone { peer: u64 },
    /// The absorber is done; settle what remains and exit.
    Shutdown,
}

/// State shared by every daemon thread.
pub(crate) struct Shared {
    pub(crate) cfg: DaemonConfig,
    pub(crate) echo: ConfigEcho,
    ring: Mutex<WindowedFleet>,
    shutdown: AtomicBool,
    /// Set while the absorber replays the journal tail after a restart;
    /// handshakes answer [`ErrorCode::Recovering`] until it clears.
    recovering: AtomicBool,
    /// Wire value of the current [`NodeRole`] (primary / standby).
    role: AtomicU8,
    /// The current fencing term: stamped into welcomes, acks, journal
    /// segment headers and the replication stream.
    term: AtomicU64,
    /// Sequence number of the live journal segment (0 without a data
    /// dir) — surfaced by [`QueryRequest::Status`].
    journal_seq: AtomicU64,
    /// Tells the standby replication client to stop (promotion/drain).
    standby_stop: AtomicBool,
    /// Asks the absorber to rotate the journal segment so a freshly
    /// bumped term reaches disk (set by promotion).
    promote_rotate: AtomicBool,
    /// Standby sender sessions currently attached (primary side).
    peers: Mutex<Vec<ReplPeer>>,
    /// The completer's event inlet, cloned by replication sender
    /// sessions so they can report standby acks. Set by the absorber
    /// before the recovering gate opens; `None` only before that.
    repl_events: Mutex<Option<mpsc::Sender<CompleterEvent>>>,
    stats: Stats,
}

impl Shared {
    pub(crate) fn draining(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    fn recovering(&self) -> bool {
        self.recovering.load(Ordering::SeqCst)
    }

    pub(crate) fn term(&self) -> u64 {
        self.term.load(Ordering::SeqCst)
    }

    /// Adopt a term seen on the wire if it is newer than ours (terms
    /// only move forward).
    pub(crate) fn observe_term(&self, term: u64) {
        self.term.fetch_max(term, Ordering::SeqCst);
    }

    /// `true` once the standby replication client must exit: promotion
    /// fenced the old stream, or the daemon is draining.
    pub(crate) fn replica_stopped(&self) -> bool {
        self.standby_stop.load(Ordering::SeqCst) || self.draining()
    }

    /// Count one record absorbed from the primary's stream (standby
    /// side of [`DaemonReport::replicated_frames`]).
    pub(crate) fn note_replicated(&self) {
        self.stats.replicated_frames.fetch_add(1, Ordering::Relaxed);
    }

    fn is_standby(&self) -> bool {
        self.role.load(Ordering::SeqCst) == 1
    }

    fn node_role(&self) -> NodeRole {
        if self.recovering() {
            NodeRole::Recovering
        } else if self.is_standby() {
            NodeRole::Standby
        } else {
            NodeRole::Primary
        }
    }

    /// Promote a standby to primary: bump the term, fence the old
    /// stream, stop the replication client, start accepting ingest.
    /// Idempotent — promoting a primary just reports the current term.
    fn promote(&self) -> u64 {
        if self.is_standby() {
            let term = self.term.fetch_add(1, Ordering::SeqCst) + 1;
            self.standby_stop.store(true, Ordering::SeqCst);
            self.promote_rotate.store(true, Ordering::SeqCst);
            self.role.store(0, Ordering::SeqCst);
            term
        } else {
            self.term()
        }
    }
}

/// Lock the ring, recovering the guard if a panicked handler poisoned
/// it. Safe because every ring mutation is atomic per frame: a handler
/// that panics mid-query mutated nothing, and the absorber's writes
/// complete before its lock drops — the state under a poisoned lock is
/// always a valid ring.
fn lock_ring(ring: &Mutex<WindowedFleet>) -> MutexGuard<'_, WindowedFleet> {
    ring.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A running daemon. Dropping it without [`Daemon::join`] leaks the
/// serving threads; always drain + join.
pub struct Daemon {
    shared: Arc<Shared>,
    ingest_addr: SocketAddr,
    query_addr: SocketAddr,
    accept_threads: Vec<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    absorber: JoinHandle<()>,
    replica: Option<JoinHandle<()>>,
    job_tx: mpsc::SyncSender<Job>,
}

impl Daemon {
    /// Bind both listeners and start serving.
    ///
    /// # Errors
    ///
    /// Un-dimensionable sketch parameters, a zero window, or a bind
    /// failure.
    pub fn start(cfg: DaemonConfig) -> Result<Self, String> {
        if cfg.credits == 0 || cfg.queue_frames == 0 {
            return Err("credits and queue_frames must be at least 1".into());
        }
        let schedule =
            Arc::new(RateSchedule::from_memory(cfg.n_max, cfg.m_bits).map_err(|e| e.to_string())?);
        // The echo template carries term 0; every handshake stamps the
        // live term in with `with_term`.
        let echo = ConfigEcho {
            n_max: cfg.n_max,
            m: cfg.m_bits as u64,
            sampling_bits: schedule.split().sampling_bits(),
            seed: cfg.seed,
            window: cfg.window as u64,
            term: 0,
        };
        let ring = WindowedFleet::with_schedule(schedule, cfg.seed, cfg.window)
            .map_err(|e| e.to_string())?;
        // Durability: restore the newest snapshot (config-checked) and
        // stage the journal tail for replay; both refuse typed on a
        // config mismatch. The actual replay runs on the absorber
        // thread behind the `recovering` flag so startup stays fast.
        // The term resumes at the highest one stamped on a surviving
        // segment, so a promotion is not forgotten across a restart.
        let (ring, durability, term) = match &cfg.data_dir {
            None => (ring, None, cfg.initial_term),
            Some(dir) => {
                let (restored, durability, term) = open_durability(dir, &echo, &cfg)?;
                (restored.unwrap_or(ring), Some(durability), term)
            }
        };
        let must_replay = durability.as_ref().is_some_and(|d| !d.replay.is_empty());
        let journal_seq = durability.as_ref().map_or(0, |d| d.writer.seq());
        let ingest = TcpListener::bind(&cfg.ingest_addr)
            .map_err(|e| format!("bind {}: {e}", cfg.ingest_addr))?;
        let query = TcpListener::bind(&cfg.query_addr)
            .map_err(|e| format!("bind {}: {e}", cfg.query_addr))?;
        let ingest_addr = ingest.local_addr().map_err(|e| e.to_string())?;
        let query_addr = query.local_addr().map_err(|e| e.to_string())?;
        ingest.set_nonblocking(true).map_err(|e| e.to_string())?;
        query.set_nonblocking(true).map_err(|e| e.to_string())?;

        let is_standby = cfg.standby_of.is_some();
        let shared = Arc::new(Shared {
            cfg,
            echo,
            ring: Mutex::new(ring),
            shutdown: AtomicBool::new(false),
            recovering: AtomicBool::new(must_replay),
            role: AtomicU8::new(u8::from(is_standby)),
            term: AtomicU64::new(term),
            journal_seq: AtomicU64::new(journal_seq),
            standby_stop: AtomicBool::new(false),
            promote_rotate: AtomicBool::new(false),
            peers: Mutex::new(Vec::new()),
            repl_events: Mutex::new(None),
            stats: Stats::default(),
        });
        let (job_tx, job_rx) = mpsc::sync_channel::<Job>(shared.cfg.queue_frames);
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let absorber = {
            let shared = shared.clone();
            std::thread::spawn(move || absorber_loop(&shared, &job_rx, durability))
        };
        let replica = if is_standby {
            let shared = shared.clone();
            let job_tx = job_tx.clone();
            Some(std::thread::spawn(move || {
                crate::replica::run_standby(&shared, &job_tx);
            }))
        } else {
            None
        };
        let mut accept_threads = Vec::with_capacity(2);
        {
            let shared = shared.clone();
            let handlers = handlers.clone();
            let job_tx = job_tx.clone();
            accept_threads.push(std::thread::spawn(move || {
                accept_loop(&shared, &ingest, &handlers, move |shared, stream| {
                    let job_tx = job_tx.clone();
                    move || ingest_conn(&shared, stream, &job_tx)
                })
            }));
        }
        {
            let shared = shared.clone();
            let handlers = handlers.clone();
            accept_threads.push(std::thread::spawn(move || {
                accept_loop(&shared, &query, &handlers, |shared, stream| {
                    move || query_conn(&shared, stream)
                })
            }));
        }
        Ok(Self {
            shared,
            ingest_addr,
            query_addr,
            accept_threads,
            handlers,
            absorber,
            replica,
            job_tx,
        })
    }

    /// The bound ingest address (resolves port 0).
    pub fn ingest_addr(&self) -> SocketAddr {
        self.ingest_addr
    }

    /// The bound query address.
    pub fn query_addr(&self) -> SocketAddr {
        self.query_addr
    }

    /// The sketch configuration the daemon echoes in handshakes.
    pub fn config_echo(&self) -> ConfigEcho {
        self.shared.echo
    }

    /// Flip the drain flag: acceptors stop, open connections are told
    /// [`ErrorCode::Draining`] on their next deadline tick, in-flight
    /// frames finish absorbing.
    pub fn drain(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// `true` once a drain has been requested (locally or via a
    /// [`QueryRequest::Drain`]).
    pub fn is_draining(&self) -> bool {
        self.shared.draining()
    }

    /// `true` while the absorber is still replaying the journal tail
    /// after a restart; handshakes answer [`ErrorCode::Recovering`]
    /// until this clears.
    pub fn is_recovering(&self) -> bool {
        self.shared.recovering()
    }

    /// The collector's current replication role.
    pub fn node_role(&self) -> NodeRole {
        self.shared.node_role()
    }

    /// The current fencing term.
    pub fn term(&self) -> u64 {
        self.shared.term()
    }

    /// Promote a standby to primary: bump the fencing term, stop the
    /// replication client, start accepting ingest sessions. Idempotent
    /// on a primary. Returns the term now in force. (Remote peers do
    /// the same thing with [`QueryRequest::Promote`].)
    pub fn promote(&self) -> u64 {
        self.shared.promote()
    }

    /// Block until the daemon has fully drained (the flag must be — or
    /// become — set, e.g. via [`Daemon::drain`] or a remote
    /// [`QueryRequest::Drain`]), write the final ring checkpoint, and
    /// return the report.
    ///
    /// # Errors
    ///
    /// A panicked core thread (acceptor/absorber), or a failed
    /// checkpoint write. Panicked *connection handlers* are tolerated —
    /// the ring lock recovers from their poisoning — and reported via
    /// [`DaemonReport::handler_panics`].
    pub fn join(self) -> Result<DaemonReport, String> {
        // The standby replication client polls both the drain flag and
        // the promote stop flag; it exits within one read deadline.
        self.shared.standby_stop.store(true, Ordering::SeqCst);
        for t in self.accept_threads {
            t.join().map_err(|_| "accept thread panicked".to_string())?;
        }
        // No new connections past this point; existing handlers observe
        // the flag within one read deadline.
        let handlers = std::mem::take(
            &mut *self
                .handlers
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        let mut handler_panics = 0u64;
        for t in handlers {
            if t.join().is_err() {
                handler_panics += 1;
            }
        }
        if let Some(t) = self.replica {
            t.join()
                .map_err(|_| "replica thread panicked".to_string())?;
        }
        drop(self.job_tx);
        self.absorber
            .join()
            .map_err(|_| "absorber thread panicked".to_string())?;
        let (estimates, final_epoch, final_checkpoint) = {
            let ring = lock_ring(&self.shared.ring);
            (
                ring.estimates_sorted(),
                ring.current_epoch(),
                ring.checkpoint(),
            )
        };
        if let Some(path) = &self.shared.cfg.checkpoint_path {
            // Atomic (temp + fsync + rename): a crash mid-drain can
            // never leave a truncated checkpoint a later restore trusts.
            journal::write_atomic(path, &final_checkpoint)
                .map_err(|e| format!("checkpoint write {}: {e}", path.display()))?;
        }
        if let Some(dir) = &self.shared.cfg.data_dir {
            // The drain snapshot captures the whole ring, so the journal
            // has nothing left to add: write it, then clear the segments.
            journal::write_atomic(&dir.join(journal::SNAPSHOT_FILE), &final_checkpoint)
                .map_err(|e| format!("final snapshot in {}: {e}", dir.display()))?;
            for (_, path) in journal::list_segments(dir).map_err(|e| e.to_string())? {
                let _ = std::fs::remove_file(path);
            }
        }
        let s = &self.shared.stats;
        Ok(DaemonReport {
            estimates,
            final_epoch,
            final_checkpoint,
            connections: s.connections.load(Ordering::Relaxed),
            frames_absorbed: s.frames_absorbed.load(Ordering::Relaxed),
            duplicates: s.duplicates.load(Ordering::Relaxed),
            expired: s.expired.load(Ordering::Relaxed),
            bad_frames: s.bad_frames.load(Ordering::Relaxed),
            backpressure_events: s.backpressure_events.load(Ordering::Relaxed),
            handshake_rejects: s.handshake_rejects.load(Ordering::Relaxed),
            desyncs: s.desyncs.load(Ordering::Relaxed),
            queries: s.queries.load(Ordering::Relaxed),
            bytes_on_wire: s.bytes_on_wire.load(Ordering::Relaxed),
            missing_baselines: s.missing_baselines.load(Ordering::Relaxed),
            busy_rejections: s.busy_rejections.load(Ordering::Relaxed),
            journal_records: s.journal_records.load(Ordering::Relaxed),
            snapshots: s.snapshots.load(Ordering::Relaxed),
            replayed_records: s.replayed_records.load(Ordering::Relaxed),
            replay_skipped: s.replay_skipped.load(Ordering::Relaxed),
            term: self.shared.term(),
            replicated_frames: s.replicated_frames.load(Ordering::Relaxed),
            replica_drops: s.replica_drops.load(Ordering::Relaxed),
            not_primary_rejects: s.not_primary_rejects.load(Ordering::Relaxed),
            handler_panics,
        })
    }
}

/// Accept until the drain flag flips, spawning one handler per
/// connection. `make_handler` builds the per-connection closure (which
/// captures the shared state and, for ingest, a queue sender).
fn accept_loop<F, G>(
    shared: &Arc<Shared>,
    listener: &TcpListener,
    handlers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
    make_handler: F,
) where
    F: Fn(Arc<Shared>, TcpStream) -> G,
    G: FnOnce() + Send + 'static,
{
    while !shared.draining() {
        match listener.accept() {
            Ok((stream, _)) => {
                shared.stats.connections.fetch_add(1, Ordering::Relaxed);
                // Accepted sockets must block (with timeouts); only the
                // listener polls.
                let _ = stream.set_nonblocking(false);
                let handler = make_handler(shared.clone(), stream);
                handlers.lock().unwrap().push(std::thread::spawn(handler));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// The absorber's view of an open durability directory: the journal
/// writer for the live segment, the config every record must match, and
/// the segments staged for startup replay.
struct Durability {
    dir: PathBuf,
    jcfg: JournalConfig,
    writer: JournalWriter,
    /// Segments found at startup, ascending `(seq, path)` — replayed by
    /// the absorber before it serves its first job.
    replay: Vec<(u64, PathBuf)>,
    /// Frames journaled since the last snapshot (the rotation counter).
    since_snapshot: u64,
    /// Frames absorbed this run (drives the absorb/journal crash sites).
    absorbed: u64,
    /// Snapshots attempted this run (drives the snapshot crash sites).
    snapshot_attempts: u64,
}

/// Open (or create) the durability directory: restore the snapshot if
/// one exists, validate every journal segment header against the
/// collector's config, and open a fresh segment for this run's appends.
/// The returned term is the highest one stamped on a surviving segment
/// (floored at [`DaemonConfig::initial_term`]) — a promotion is not
/// forgotten across a restart.
///
/// Refuses with a typed message when the snapshot or any segment was
/// written under a different sketch configuration — replaying foreign
/// frames into the ring would corrupt estimates silently.
fn open_durability(
    dir: &Path,
    echo: &ConfigEcho,
    cfg: &DaemonConfig,
) -> Result<(Option<WindowedFleet>, Durability, u64), String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("create data dir {}: {e}", dir.display()))?;
    let jcfg = JournalConfig {
        n_max: echo.n_max,
        m: echo.m,
        sampling_bits: echo.sampling_bits,
        seed: echo.seed,
        window: echo.window,
    };
    let restored = match journal::read_snapshot(dir).map_err(|e| e.to_string())? {
        None => None,
        Some(bytes) => {
            let snap = dir.join(journal::SNAPSHOT_FILE);
            let ring: WindowedFleet = Checkpoint::restore(&bytes)
                .map_err(|e| format!("snapshot {}: {e}", snap.display()))?;
            let found = ring_config(&ring);
            if found != jcfg {
                return Err(journal::JournalError::ConfigMismatch {
                    expected: jcfg,
                    found,
                }
                .to_string());
            }
            Some(ring)
        }
    };
    let segments = journal::list_segments(dir).map_err(|e| e.to_string())?;
    let mut replay = Vec::with_capacity(segments.len());
    let mut term = cfg.initial_term;
    let last = segments.len().saturating_sub(1);
    for (i, (seq, path)) in segments.into_iter().enumerate() {
        match read_segment_header(&path) {
            Ok(header) => {
                let (found, _, seg_term) =
                    journal::decode_segment_header(&header).map_err(|e| e.to_string())?;
                if found != jcfg {
                    return Err(journal::JournalError::ConfigMismatch {
                        expected: jcfg,
                        found,
                    }
                    .to_string());
                }
                term = term.max(seg_term);
                replay.push((seq, path));
            }
            // The newest segment may have a torn header (crash during
            // its creation): it cannot hold a valid record, skip it.
            // A torn header on an *older* segment is real corruption.
            Err(e) if i == last => {
                let _ = e;
            }
            Err(e) => return Err(e),
        }
    }
    let seq = journal::next_segment_seq(dir).map_err(|e| e.to_string())?;
    let writer = JournalWriter::create(dir, &jcfg, seq, term, cfg.fsync_journal)
        .map_err(|e| e.to_string())?;
    Ok((
        restored,
        Durability {
            dir: dir.to_path_buf(),
            jcfg,
            writer,
            replay,
            since_snapshot: 0,
            absorbed: 0,
            snapshot_attempts: 0,
        },
        term,
    ))
}

/// The sketch configuration a restored ring was built with, in journal
/// form — compared against the collector's own config on recovery.
fn ring_config(ring: &WindowedFleet) -> JournalConfig {
    let schedule = ring.schedule();
    JournalConfig {
        n_max: schedule.dims().n_max(),
        m: schedule.dims().m() as u64,
        sampling_bits: schedule.split().sampling_bits(),
        seed: ring.seed(),
        window: ring.window_epochs() as u64,
    }
}

/// Read exactly the segment header prefix of a journal file.
fn read_segment_header(path: &Path) -> Result<Vec<u8>, String> {
    use std::io::Read;
    let mut file =
        std::fs::File::open(path).map_err(|e| format!("open {}: {e}", path.display()))?;
    let mut header = vec![0u8; journal::SEGMENT_HEADER_LEN];
    file.read_exact(&mut header)
        .map_err(|e| format!("segment {}: truncated header: {e}", path.display()))?;
    Ok(header)
}

/// Replay every staged segment into the ring, record by record. Skips
/// (counted, ring untouched) anything the restored state cannot accept:
/// undecodable payloads, resealed records whose inner frame fails its
/// own checksum, epochs absurdly far ahead. Replay runs before the
/// first job, so it holds the ring lock uncontended.
fn replay_journal(shared: &Shared, d: &Durability) {
    for (_, path) in &d.replay {
        // Headers were validated at startup; an unreadable file here is
        // an I/O race (operator deleted it) — skip the segment.
        let Ok(scan) = journal::read_segment(path) else {
            continue;
        };
        for rec in &scan.records {
            match replay_record(shared, rec) {
                Ok(AbsorbOutcome::Absorbed) => {
                    shared
                        .stats
                        .replayed_records
                        .fetch_add(1, Ordering::Relaxed);
                }
                // Duplicate/expired replays (stale segments a crash left
                // behind, records older than the snapshot) are no-ops.
                Ok(_) | Err(()) => {
                    shared.stats.replay_skipped.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}

/// Apply one journal record to the ring. `Err(())` means the record was
/// skipped (undecodable, resealed, or out of range) and the ring is
/// exactly as it was before the call.
fn replay_record(shared: &Shared, rec: &JournalRecord) -> Result<AbsorbOutcome, ()> {
    let (_, kind) = codec::peek_kind(&rec.payload).map_err(|_| ())?;
    let mut ring = lock_ring(&shared.ring);
    let current = ring.current_epoch();
    if rec.epoch > current && rec.epoch - current > MAX_EPOCH_JUMP {
        return Err(());
    }
    match kind {
        CounterKind::SketchFleet => {
            let fleet = <FleetArena as Checkpoint>::restore(&rec.payload).map_err(|_| ())?;
            if rec.epoch > current {
                ring.advance_to(rec.epoch).map_err(|_| ())?;
            }
            ring.absorb_epoch_from(rec.source, rec.epoch, &fleet)
                .map_err(|_| ())
        }
        CounterKind::FleetDelta => {
            let frame = FleetDeltaFrame::decode(&rec.payload).map_err(|_| ())?;
            if frame.epoch != rec.epoch {
                return Err(());
            }
            if rec.epoch > current {
                ring.advance_to(rec.epoch).map_err(|_| ())?;
            }
            // The replay variant: the journal's causal order guarantees
            // the baseline preceded this delta, but the snapshot may
            // have absorbed (and truncated) its record, so the live
            // baseline check would spuriously refuse the chain.
            ring.absorb_delta_replay(rec.source, &frame).map_err(|_| ())
        }
        _ => Err(()),
    }
}

/// Deliberately die if the configured crash point names this site and
/// its counter has reached the trigger.
fn crash_if(shared: &Shared, site: CrashSite, count: u64) {
    if shared.cfg.crash_point == Some(CrashPoint { site, after: count }) {
        // `abort`, not `exit`: no unwinding, no buffer flushes — the
        // closest safe stand-in for SIGKILL landing mid-operation.
        std::process::abort();
    }
}

/// Append the just-absorbed frame to the journal — the write-ahead step
/// that must land *before* the ack leaves. Returns the encoded record
/// image (what replication ships verbatim). `Err(detail)` means the
/// append failed and the frame must not be acked as durable.
fn journal_absorbed(
    shared: &Shared,
    d: &mut Durability,
    job: &FrameJob,
) -> Result<Vec<u8>, String> {
    d.absorbed += 1;
    crash_if(shared, CrashSite::AbsorbBeforeJournal, d.absorbed);
    let encoded = journal::encode_record(&JournalRecord {
        source: job.agent,
        epoch: job.epoch,
        payload: job.wire.clone(),
    });
    if let Some(cp) = shared.cfg.crash_point {
        if cp.site == CrashSite::MidJournalAppend && cp.after == d.absorbed {
            // Write half the record, then die: recovery must discard
            // the torn tail by checksum.
            let _ = d.writer.append_bytes(&encoded[..encoded.len() / 2]);
            std::process::abort();
        }
    }
    d.writer.append_bytes(&encoded).map_err(|e| e.to_string())?;
    d.since_snapshot += 1;
    shared.stats.journal_records.fetch_add(1, Ordering::Relaxed);
    Ok(encoded)
}

/// Snapshot the ring and rotate the journal when the cadence is due.
///
/// Ordering is what makes every crash recoverable: (1) write the
/// snapshot atomically, (2) rotate appends to a fresh segment, (3) only
/// then delete the covered segments. A crash between any two steps
/// leaves either the old snapshot + full journal, or the new snapshot +
/// stale segments whose replay is an OR-idempotent no-op.
fn maybe_snapshot(shared: &Shared, d: &mut Durability) {
    if shared.cfg.snapshot_every == 0 || d.since_snapshot < shared.cfg.snapshot_every {
        return;
    }
    let bytes = lock_ring(&shared.ring).checkpoint();
    d.snapshot_attempts += 1;
    let snap_path = d.dir.join(journal::SNAPSHOT_FILE);
    if let Some(cp) = shared.cfg.crash_point {
        if cp.site == CrashSite::MidSnapshotWrite && cp.after == d.snapshot_attempts {
            // Leave a partial temp file, then die: recovery must ignore
            // it and fall back to the previous snapshot + journal.
            let _ = std::fs::write(snap_path.with_extension("tmp"), &bytes[..bytes.len() / 2]);
            std::process::abort();
        }
    }
    if journal::write_atomic(&snap_path, &bytes).is_err() {
        // Snapshot failed; keep journaling into the current segment and
        // try again at the next cadence point. Nothing was lost.
        return;
    }
    let covered = d.writer.seq();
    match JournalWriter::create(
        &d.dir,
        &d.jcfg,
        covered + 1,
        shared.term(),
        shared.cfg.fsync_journal,
    ) {
        Ok(writer) => {
            d.writer = writer;
            shared.journal_seq.store(covered + 1, Ordering::SeqCst);
        }
        // Rotation failed: the old writer stays live. The snapshot is
        // still valid — replaying the covered segment is a no-op.
        Err(_) => return,
    }
    crash_if(shared, CrashSite::AfterSnapshotRename, d.snapshot_attempts);
    if let Ok(segments) = journal::list_segments(&d.dir) {
        for (seq, path) in segments {
            if seq <= covered {
                let _ = std::fs::remove_file(path);
            }
        }
    }
    d.since_snapshot = 0;
    shared.stats.snapshots.fetch_add(1, Ordering::Relaxed);
}

/// One finished absorb handed to the completer thread: the ack to
/// release, and — for a newly absorbed primary frame — the journal
/// record image to ship to every attached standby first.
struct Complete {
    msg: Message,
    ack: mpsc::Sender<Message>,
    record: Option<Arc<Vec<u8>>>,
}

/// `true` when at least one standby sender session is attached.
fn has_peers(shared: &Shared) -> bool {
    !shared
        .peers
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .is_empty()
}

/// One agent ack the completer is holding back until every standby that
/// was attached at ship time has acknowledged the frame's journal
/// record (or missed the replication deadline and been dropped).
struct PendingAck {
    /// The completer's own monotone id for this frame (what per-peer
    /// ship FIFOs reference).
    seq: u64,
    msg: Message,
    ack: mpsc::Sender<Message>,
    /// Whether a journal record rode along (drives the crash-site
    /// counter and the `AfterReplicate` semantics: after broadcast,
    /// before the agent ack).
    record: bool,
    shipped_at: Instant,
    /// Peers whose acknowledgement is still outstanding.
    waits: Vec<u64>,
}

/// The completer's view of one attached standby: the wire seqs shipped
/// to it and not yet acked, paired with the pending acks they hold up
/// (a standby acks strictly in ship order, so a cumulative `PeerAck`
/// settles a prefix of this FIFO).
struct PeerShip {
    fifo: VecDeque<(u64, u64)>,
    next_wire: u64,
}

/// The completer's working state: acks held in absorb order, plus the
/// per-peer ship FIFOs.
struct Completer {
    pending: VecDeque<PendingAck>,
    ships: HashMap<u64, PeerShip>,
    next_seq: u64,
    shipped: u64,
}

impl Completer {
    /// Ship one absorbed frame's record to every attached standby
    /// without waiting, and hold its ack. The `Replicate` frame goes
    /// straight onto each peer's writer queue; a peer already sitting
    /// on [`REPL_PIPELINE`] unacked records is hopelessly behind and is
    /// dropped on the spot — it re-syncs from a snapshot on reconnect.
    fn ship(&mut self, shared: &Shared, c: Complete) {
        self.next_seq += 1;
        let seq = self.next_seq;
        let mut waits = Vec::new();
        let mut dead = Vec::new();
        if let Some(record) = &c.record {
            let term = shared.term();
            let mut peers = shared
                .peers
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            peers.retain(|p| {
                let ship = self.ships.entry(p.id).or_insert_with(|| PeerShip {
                    fifo: VecDeque::new(),
                    next_wire: 0,
                });
                ship.next_wire += 1;
                let sent = ship.fifo.len() < REPL_PIPELINE
                    && p.out
                        .send(Message::Replicate {
                            seq: ship.next_wire,
                            term,
                            record: record.as_ref().clone(),
                        })
                        .is_ok();
                if sent {
                    waits.push(p.id);
                    ship.fifo.push_back((ship.next_wire, seq));
                    true
                } else {
                    shared.stats.replica_drops.fetch_add(1, Ordering::Relaxed);
                    p.alive.store(false, Ordering::SeqCst);
                    dead.push(p.id);
                    false
                }
            });
        }
        self.pending.push_back(PendingAck {
            seq,
            msg: c.msg,
            ack: c.ack,
            record: c.record.is_some(),
            shipped_at: Instant::now(),
            waits,
        });
        for peer in dead {
            self.drop_peer(shared, peer);
        }
    }

    /// A peer cumulatively acknowledged every record shipped to it with
    /// wire seq ≤ `acked`.
    fn peer_acked(&mut self, shared: &Shared, peer: u64, acked: u64) {
        // A stray ack from a peer the deadline already expired is
        // simply absent from the map.
        let Some(ship) = self.ships.get_mut(&peer) else {
            return;
        };
        while ship.fifo.front().is_some_and(|(wire, _)| *wire <= acked) {
            let (_, seq) = ship.fifo.pop_front().expect("front exists");
            if let Some(p) = self.pending.iter_mut().find(|p| p.seq == seq) {
                p.waits.retain(|id| *id != peer);
                shared
                    .stats
                    .replicated_frames
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Forget a dead peer: every record still in flight on it failed.
    fn drop_peer(&mut self, shared: &Shared, peer: u64) {
        self.ships.remove(&peer);
        for p in &mut self.pending {
            let before = p.waits.len();
            p.waits.retain(|id| *id != peer);
            let failed = (before - p.waits.len()) as u64;
            if failed > 0 {
                shared
                    .stats
                    .replica_drops
                    .fetch_add(failed, Ordering::Relaxed);
            }
        }
        // Clearing `alive` tells the sender session to close; the
        // session deregisters itself on the way out.
        let mut peers = shared
            .peers
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(p) = peers.iter().find(|p| p.id == peer) {
            p.alive.store(false, Ordering::SeqCst);
        }
        peers.retain(|p| p.id != peer);
    }

    /// Release every front ack whose waits are all settled.
    fn release_ready(&mut self, shared: &Shared) {
        while self.pending.front().is_some_and(|p| p.waits.is_empty()) {
            let p = self.pending.pop_front().expect("front exists");
            if p.record {
                self.shipped += 1;
                // The frame is on the standby but the agent never saw
                // the ack: after failover the agent retransmits and the
                // seen-guard absorbs the replay as a duplicate.
                crash_if(shared, CrashSite::AfterReplicate, self.shipped);
            }
            let _ = p.ack.send(p.msg);
        }
    }

    /// The oldest ack missed [`DaemonConfig::replication_timeout`]:
    /// drop every peer still holding it up.
    fn expire_front(&mut self, shared: &Shared) {
        let Some(front) = self.pending.front() else {
            return;
        };
        if front.shipped_at.elapsed() < shared.cfg.replication_timeout {
            return;
        }
        for peer in front.waits.clone() {
            self.drop_peer(shared, peer);
        }
    }
}

/// The completer thread: ships each newly absorbed record to every
/// attached standby *immediately*, then releases agent acks in absorb
/// order as the standby acknowledgements stream back. Everything is
/// event-driven over one channel — no polling ticks anywhere — so the
/// standby can be absorbing record N while records N+1.. are already on
/// the wire, and the write-ahead guarantee ("acked ⇒ journaled and
/// replicated") costs latency, not throughput.
fn completer_loop(shared: &Shared, rx: &mpsc::Receiver<CompleterEvent>) {
    let mut state = Completer {
        pending: VecDeque::new(),
        ships: HashMap::new(),
        next_seq: 0,
        shipped: 0,
    };
    let mut open = true;
    while open || !state.pending.is_empty() {
        let event = if let Some(front) = state.pending.front() {
            // Wake when the oldest ack would miss the replication
            // deadline, even if no event arrives.
            let left = shared
                .cfg
                .replication_timeout
                .saturating_sub(front.shipped_at.elapsed());
            match rx.recv_timeout(left) {
                Ok(e) => e,
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    state.expire_front(shared);
                    state.release_ready(shared);
                    continue;
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    // Absorber and every session are gone; nothing can
                    // settle the remaining waits.
                    for p in &mut state.pending {
                        for _ in p.waits.drain(..) {
                            shared.stats.replica_drops.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    state.release_ready(shared);
                    break;
                }
            }
        } else {
            match rx.recv() {
                Ok(e) => e,
                Err(_) => break,
            }
        };
        match event {
            CompleterEvent::Complete(c) => state.ship(shared, c),
            CompleterEvent::PeerAck { peer, acked } => state.peer_acked(shared, peer, acked),
            CompleterEvent::PeerGone { peer } => state.drop_peer(shared, peer),
            CompleterEvent::Shutdown => open = false,
        }
        state.release_ready(shared);
    }
}

/// Standby catch-up: validate + persist the primary's checkpoint, reset
/// the local journal underneath it, then swap the ring. On `Err` the
/// ring is untouched and the standby must retry from a fresh session.
fn install_snapshot(
    shared: &Shared,
    durability: &mut Option<Durability>,
    bytes: &[u8],
) -> Result<(), String> {
    let ring: WindowedFleet =
        Checkpoint::restore(bytes).map_err(|e| format!("replicated snapshot: {e}"))?;
    if let Some(d) = durability.as_mut() {
        if ring_config(&ring) != d.jcfg {
            return Err("replicated snapshot has a foreign sketch configuration".into());
        }
        // Disk first, ring second: a crash between the two recovers
        // from the just-written snapshot, which the primary will top up
        // through the normal record stream on reconnect.
        journal::write_atomic(&d.dir.join(journal::SNAPSHOT_FILE), bytes)
            .map_err(|e| e.to_string())?;
        let covered = d.writer.seq();
        let writer = JournalWriter::create(
            &d.dir,
            &d.jcfg,
            covered + 1,
            shared.term(),
            shared.cfg.fsync_journal,
        )
        .map_err(|e| e.to_string())?;
        d.writer = writer;
        shared.journal_seq.store(covered + 1, Ordering::SeqCst);
        if let Ok(segments) = journal::list_segments(&d.dir) {
            for (seq, path) in segments {
                if seq <= covered {
                    let _ = std::fs::remove_file(path);
                }
            }
        }
        d.since_snapshot = 0;
    } else if ring_config(&ring)
        != (JournalConfig {
            n_max: shared.echo.n_max,
            m: shared.echo.m,
            sampling_bits: shared.echo.sampling_bits,
            seed: shared.echo.seed,
            window: shared.echo.window,
        })
    {
        return Err("replicated snapshot has a foreign sketch configuration".into());
    }
    *lock_ring(&shared.ring) = ring;
    Ok(())
}

/// Rotate the journal segment when a promotion asks for it, so the
/// bumped term reaches disk. (Until the next record lands, the term
/// survives a restart only via this rotated header.)
fn maybe_promote_rotate(shared: &Shared, durability: &mut Option<Durability>) {
    if !shared.promote_rotate.swap(false, Ordering::SeqCst) {
        return;
    }
    if let Some(d) = durability.as_mut() {
        let next = d.writer.seq() + 1;
        if let Ok(writer) = JournalWriter::create(
            &d.dir,
            &d.jcfg,
            next,
            shared.term(),
            shared.cfg.fsync_journal,
        ) {
            d.writer = writer;
            shared.journal_seq.store(next, Ordering::SeqCst);
        }
    }
}

/// The single ring writer: replays the journal tail (when recovering),
/// then drains the bounded job queue until every sender is gone. Each
/// frame is absorbed, journaled, and handed to the completer thread,
/// which ships it to the standbys and only then releases the ack.
fn absorber_loop(shared: &Arc<Shared>, rx: &mpsc::Receiver<Job>, durability: Option<Durability>) {
    let mut durability = durability;
    if let Some(d) = durability.as_ref() {
        replay_journal(shared, d);
    }
    let (comp_tx, comp_rx) = mpsc::channel::<CompleterEvent>();
    // Publish the completer's inlet before the recovery gate opens so a
    // replication sender session can never race past it.
    *shared
        .repl_events
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(comp_tx.clone());
    shared.recovering.store(false, Ordering::SeqCst);
    let completer = {
        let shared = shared.clone();
        std::thread::spawn(move || completer_loop(&shared, &comp_rx))
    };
    for job in rx {
        maybe_promote_rotate(shared, &mut durability);
        let job = match job {
            Job::Frame(job) => job,
            Job::InstallSnapshot { bytes, done } => {
                let _ = done.send(install_snapshot(shared, &mut durability, &bytes));
                continue;
            }
        };
        if !shared.cfg.absorb_stall.is_zero() {
            std::thread::sleep(shared.cfg.absorb_stall);
        }
        let term = shared.term();
        let mut newly_absorbed = false;
        let mut msg = {
            let mut ring = lock_ring(&shared.ring);
            let current = ring.current_epoch();
            if job.epoch > current && job.epoch - current > MAX_EPOCH_JUMP {
                shared.stats.bad_frames.fetch_add(1, Ordering::Relaxed);
                Message::Error {
                    code: ErrorCode::EpochOutOfRange,
                    context: job.epoch,
                    detail: format!("epoch {} is too far ahead of {current}", job.epoch),
                }
            } else {
                if job.epoch > current {
                    ring.advance_to(job.epoch).expect("monotone advance");
                }
                let absorbed = match &job.payload {
                    JobPayload::Full(fleet) => ring.absorb_epoch_from(job.agent, job.epoch, fleet),
                    // Replicated records ride the replay path: the
                    // primary's journal order already proved the delta
                    // chain, and the baseline may live only inside the
                    // catch-up snapshot here.
                    JobPayload::Delta(frame) if job.replay => {
                        ring.absorb_delta_replay(job.agent, frame)
                    }
                    JobPayload::Delta(frame) => ring.absorb_delta_from(job.agent, frame),
                };
                match absorbed {
                    Ok(outcome) => {
                        let counter = match outcome {
                            AbsorbOutcome::Absorbed => &shared.stats.frames_absorbed,
                            AbsorbOutcome::Duplicate => &shared.stats.duplicates,
                            AbsorbOutcome::Expired => &shared.stats.expired,
                        };
                        counter.fetch_add(1, Ordering::Relaxed);
                        newly_absorbed = outcome == AbsorbOutcome::Absorbed;
                        let outcome = match outcome {
                            AbsorbOutcome::Absorbed => sbitmap_stream::net::AckOutcome::Absorbed,
                            AbsorbOutcome::Duplicate => sbitmap_stream::net::AckOutcome::Duplicate,
                            AbsorbOutcome::Expired => sbitmap_stream::net::AckOutcome::Expired,
                        };
                        match &job.payload {
                            JobPayload::Full(_) => Message::Ack {
                                epoch: job.epoch,
                                outcome,
                                term,
                            },
                            JobPayload::Delta(frame) => Message::AckDelta {
                                epoch: job.epoch,
                                round: frame.round,
                                outcome,
                                term,
                            },
                        }
                    }
                    Err(SBitmapError::MissingBaseline { epoch, round }) => {
                        // Not corruption: the chain head never landed
                        // (daemon restart, expiry race). The typed error
                        // tells the agent to resend the epoch from its
                        // round-0 baseline.
                        shared
                            .stats
                            .missing_baselines
                            .fetch_add(1, Ordering::Relaxed);
                        Message::Error {
                            code: ErrorCode::MissingBaseline,
                            context: epoch,
                            detail: format!(
                                "delta round {round} for epoch {epoch} has no absorbed baseline"
                            ),
                        }
                    }
                    Err(e) => {
                        shared.stats.bad_frames.fetch_add(1, Ordering::Relaxed);
                        Message::Error {
                            code: ErrorCode::BadFrame,
                            context: job.epoch,
                            detail: e.to_string(),
                        }
                    }
                }
            }
        };
        let mut journal_ok = true;
        let mut record = None;
        if newly_absorbed {
            // Replicated records are never re-shipped (no cascading
            // replication); local frames only need encoding when a
            // standby is actually attached.
            let want_ship = !job.replay && has_peers(shared);
            if let Some(d) = durability.as_mut() {
                match journal_absorbed(shared, d, &job) {
                    Ok(encoded) => {
                        if want_ship {
                            record = Some(Arc::new(encoded));
                        }
                    }
                    Err(detail) => {
                        // The frame reached memory but not the journal:
                        // do not ack it as durable. The typed error
                        // makes the agent retransmit once the disk
                        // recovers, and the retry lands as a guarded
                        // duplicate if it races.
                        shared.stats.bad_frames.fetch_add(1, Ordering::Relaxed);
                        journal_ok = false;
                        msg = Message::Error {
                            code: ErrorCode::Internal,
                            context: job.epoch,
                            detail,
                        };
                    }
                }
            } else if want_ship {
                record = Some(Arc::new(journal::encode_record(&JournalRecord {
                    source: job.agent,
                    epoch: job.epoch,
                    payload: job.wire.clone(),
                })));
            }
        }
        // Every ack routes through the completer so per-session ack
        // order matches absorb order even when only some frames ship.
        if comp_tx
            .send(CompleterEvent::Complete(Complete {
                msg,
                ack: job.ack,
                record,
            }))
            .is_err()
        {
            return;
        }
        if newly_absorbed && journal_ok {
            if let Some(d) = durability.as_mut() {
                maybe_snapshot(shared, d);
            }
        }
    }
    // Stop handing out the inlet, tell the completer no more frames are
    // coming, and let it flush every held ack before the ring is read
    // for the final drain summaries.
    *shared
        .repl_events
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = None;
    let _ = comp_tx.send(CompleterEvent::Shutdown);
    drop(comp_tx);
    let _ = completer.join();
}

/// Read events until a `Hello` arrives (tolerating deadline ticks up to
/// the idle limit); validate its role against `accept`; send `Welcome`
/// on success. Returns the agent id, the negotiated session protocol —
/// `min(client, max_proto)`, so a delta-capable agent talking to a
/// v2-only collector lands on protocol 1 and ships full frames — and
/// the peer's role, or `None` when the session should close (the typed
/// rejection has already been queued).
///
/// Fencing happens here: a standby refuses `Ingest` and `Replicate`
/// hellos with [`ErrorCode::NotPrimary`], and so does a *primary* whose
/// term is older than the one the peer has already seen — a deposed
/// primary must not accept writes the rest of the fleet has moved past.
fn handshake(
    shared: &Shared,
    reader: &mut FrameReader<TcpStream>,
    out: &impl Fn(Message),
    accept: &[Role],
) -> Option<(u64, u16, Role)> {
    let mut idle = Duration::ZERO;
    let (proto, role, agent, config) = loop {
        if shared.draining() {
            out(Message::Error {
                code: ErrorCode::Draining,
                context: 0,
                detail: "collector is draining".into(),
            });
            return None;
        }
        if shared.recovering() {
            // The ring is mid-replay: absorbing or answering now would
            // expose a state that is neither the crashed run nor the
            // recovered one. Agents retry; recovery is typically fast.
            out(Message::Error {
                code: ErrorCode::Recovering,
                context: 0,
                detail: "collector is replaying its journal".into(),
            });
            return None;
        }
        match reader.read_event() {
            Ok(ReadEvent::Message(Message::Hello {
                proto,
                role,
                agent,
                config,
            })) => break (proto, role, agent, config),
            Ok(ReadEvent::Message(_)) => {
                out(Message::Error {
                    code: ErrorCode::Protocol,
                    context: 0,
                    detail: "expected Hello".into(),
                });
                return None;
            }
            Ok(ReadEvent::Corrupt(detail)) => {
                // A corrupt handshake is rejected outright: there is no
                // session to keep alive yet.
                shared.stats.bad_frames.fetch_add(1, Ordering::Relaxed);
                out(Message::Error {
                    code: ErrorCode::BadFrame,
                    context: 0,
                    detail,
                });
                return None;
            }
            Ok(ReadEvent::TimedOut) => {
                idle += shared.cfg.read_deadline;
                if idle >= shared.cfg.idle_limit {
                    return None;
                }
            }
            Ok(ReadEvent::Closed) => return None,
            Err(NetError::Desync(detail)) => {
                shared.stats.desyncs.fetch_add(1, Ordering::Relaxed);
                out(Message::Error {
                    code: ErrorCode::Desync,
                    context: 0,
                    detail,
                });
                return None;
            }
            Err(NetError::Io(_)) => return None,
        }
    };
    let session_proto = proto.min(shared.cfg.max_proto);
    if session_proto == 0 {
        shared
            .stats
            .handshake_rejects
            .fetch_add(1, Ordering::Relaxed);
        out(Message::Error {
            code: ErrorCode::VersionMismatch,
            context: u64::from(proto),
            detail: format!(
                "collector speaks protocols 1..={}, peer spoke {proto}",
                shared.cfg.max_proto
            ),
        });
        return None;
    }
    if !accept.contains(&role) {
        shared
            .stats
            .handshake_rejects
            .fetch_add(1, Ordering::Relaxed);
        out(Message::Error {
            code: ErrorCode::Protocol,
            context: 0,
            detail: "wrong role for this port".into(),
        });
        return None;
    }
    if role != Role::Query {
        // Writes only land on the acting primary. `context` carries the
        // refusing collector's term so a failing-over agent learns how
        // far the fleet has moved.
        if shared.is_standby() {
            shared
                .stats
                .not_primary_rejects
                .fetch_add(1, Ordering::Relaxed);
            out(Message::Error {
                code: ErrorCode::NotPrimary,
                context: shared.term(),
                detail: "collector is a standby; promote it or dial the primary".into(),
            });
            return None;
        }
        if config.term > shared.term() {
            // The peer has seen a newer term than ours: we are a deposed
            // primary that missed its own fencing. Refusing here is the
            // split-brain guard for agents that reconnect to the old
            // address after a failover.
            shared
                .stats
                .not_primary_rejects
                .fetch_add(1, Ordering::Relaxed);
            out(Message::Error {
                code: ErrorCode::NotPrimary,
                context: shared.term(),
                detail: format!(
                    "peer has seen term {}, collector is fenced at term {}",
                    config.term,
                    shared.term()
                ),
            });
            return None;
        }
    }
    // Only writer sessions must agree on the sketch configuration; a
    // query client reads whatever the collector holds. The fencing term
    // is deliberately excluded from agreement — it is negotiated, not
    // configured.
    if role != Role::Query && !config.agrees_with(&shared.echo) {
        shared
            .stats
            .handshake_rejects
            .fetch_add(1, Ordering::Relaxed);
        out(Message::Error {
            code: ErrorCode::ConfigMismatch,
            context: 0,
            detail: format!("collector config {:?}, peer config {config:?}", shared.echo),
        });
        return None;
    }
    out(Message::Welcome {
        proto: session_proto,
        credits: shared.cfg.credits,
        config: shared.echo.with_term(shared.term()),
    });
    Some((agent, session_proto, role))
}

/// One ingest connection: handshake, then decode batches into absorb
/// jobs until EOF, desync, idle timeout or drain.
fn ingest_conn(shared: &Arc<Shared>, stream: TcpStream, job_tx: &mpsc::SyncSender<Job>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.cfg.read_deadline));
    let _ = stream.set_write_timeout(Some(shared.cfg.write_deadline));
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    // Acks are produced by the absorber thread while this thread is
    // blocked reading, so writes go through a dedicated writer thread
    // fed by an unbounded channel (acks are small; the bound that
    // matters is the job queue).
    let (out_tx, out_rx) = mpsc::channel::<Message>();
    let writer = std::thread::spawn(move || {
        let mut out = BufWriter::new(write_half);
        // On error: keep draining so ack sends never block.
        let mut dead = false;
        while let Ok(msg) = out_rx.recv() {
            if !dead && out.write_all(&sbitmap_stream::net::encode(&msg)).is_err() {
                dead = true;
            }
            // Coalesce everything already queued into this flush: under
            // load the queue holds bursts (replication ships, ack runs)
            // and one syscall per burst beats one per message.
            while let Ok(msg) = out_rx.try_recv() {
                if !dead && out.write_all(&sbitmap_stream::net::encode(&msg)).is_err() {
                    dead = true;
                }
            }
            if !dead && out.flush().is_err() {
                dead = true;
            }
        }
    });
    let out = |msg: Message| {
        let _ = out_tx.send(msg);
    };

    let mut reader = FrameReader::new(stream);
    match handshake(shared, &mut reader, &out, &[Role::Ingest, Role::Replicate]) {
        Some((agent, proto, Role::Ingest)) => {
            ingest_session(shared, &mut reader, &out_tx, job_tx, agent, proto);
        }
        Some((agent, _, Role::Replicate)) => {
            replicate_sender_session(shared, &mut reader, &out_tx, agent);
        }
        _ => {}
    }
    drop(out_tx);
    let _ = writer.join();
}

/// The primary side of one attached standby: register with the
/// completer's peer list, ship a catch-up snapshot, then relay each
/// journal record the completer hands over and report its ack.
///
/// Registration happens *before* the ring checkpoint is taken, so every
/// record is covered exactly once-or-more: anything absorbed before the
/// checkpoint is inside it, anything after is queued to this peer, and
/// the overlap replays as OR-idempotent duplicates on the standby.
fn replicate_sender_session(
    shared: &Arc<Shared>,
    reader: &mut FrameReader<TcpStream>,
    out_tx: &mpsc::Sender<Message>,
    _agent: u64,
) {
    // The completer's event inlet exists once the absorber is past
    // recovery; a session that somehow lands earlier just closes.
    let Some(comp_tx) = shared
        .repl_events
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone()
    else {
        return;
    };
    static PEER_SEQ: AtomicU64 = AtomicU64::new(1);
    let peer_id = PEER_SEQ.fetch_add(1, Ordering::Relaxed);
    let alive = Arc::new(AtomicBool::new(true));
    {
        // Checkpoint, queue the snapshot and register while holding the
        // peers lock: the completer ships under the same lock, so no
        // record can slip onto the writer queue ahead of the snapshot,
        // and anything absorbed before registration is inside it —
        // every frame is covered once-or-more (the overlap replays as
        // OR-idempotent duplicates on the standby).
        let mut peers = shared
            .peers
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let frame = lock_ring(&shared.ring).checkpoint();
        let _ = out_tx.send(Message::ReplicateSnapshot {
            term: shared.term(),
            frame,
        });
        peers.push(ReplPeer {
            id: peer_id,
            out: out_tx.clone(),
            alive: alive.clone(),
        });
    }
    // Records are shipped by the completer directly; this loop only
    // reads the standby's cumulative acks and forwards them as
    // `PeerAck` events. Deadline enforcement lives in the completer
    // (`expire_front`), which clears `alive` to evict us.
    loop {
        match reader.read_event() {
            Ok(ReadEvent::Message(Message::ReplicateAck { seq: acked, .. })) => {
                let _ = comp_tx.send(CompleterEvent::PeerAck {
                    peer: peer_id,
                    acked,
                });
            }
            Ok(ReadEvent::TimedOut) => {
                if shared.draining() || !alive.load(Ordering::SeqCst) {
                    break;
                }
            }
            Ok(ReadEvent::Message(Message::Goodbye)) | Ok(ReadEvent::Closed) | Err(_) => {
                break;
            }
            Ok(_) => {}
        }
    }
    // Anything still un-acked failed with the session; `PeerGone` makes
    // the completer count the drops and detach this peer.
    let _ = comp_tx.send(CompleterEvent::PeerGone { peer: peer_id });
    shared
        .peers
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .retain(|p| p.id != peer_id);
}

/// The post-handshake ingest loop.
fn ingest_session(
    shared: &Arc<Shared>,
    reader: &mut FrameReader<TcpStream>,
    out_tx: &mpsc::Sender<Message>,
    job_tx: &mpsc::SyncSender<Job>,
    agent: u64,
    proto: u16,
) {
    // Queue a decoded payload, blocking on the bounded job queue when
    // the absorber falls behind — up to the busy deadline, past which
    // the frame is shed with a typed `Busy` answer (overload must not
    // stall a socket forever). Returns `false` when the daemon side is
    // gone and the session should end.
    let enqueue = |epoch: u64, payload: JobPayload, wire: Vec<u8>| -> bool {
        let mut job = Job::Frame(FrameJob {
            epoch,
            agent,
            payload,
            wire,
            replay: false,
            ack: out_tx.clone(),
        });
        job = match job_tx.try_send(job) {
            Ok(()) => return true,
            Err(mpsc::TrySendError::Disconnected(_)) => return false,
            Err(mpsc::TrySendError::Full(job)) => {
                // The queue is the backpressure valve: stop reading the
                // socket and retry until the absorber catches up or the
                // shed deadline passes.
                shared
                    .stats
                    .backpressure_events
                    .fetch_add(1, Ordering::Relaxed);
                job
            }
        };
        let deadline = Instant::now() + shared.cfg.busy_timeout;
        loop {
            job = match job_tx.try_send(job) {
                Ok(()) => return true,
                Err(mpsc::TrySendError::Disconnected(_)) => return false,
                Err(mpsc::TrySendError::Full(job)) => job,
            };
            if Instant::now() >= deadline {
                shared.stats.busy_rejections.fetch_add(1, Ordering::Relaxed);
                // The frame is dropped unacked; the hint tells the
                // agent how long to back off before retransmitting.
                let hint_ms = (shared.cfg.busy_timeout.as_millis() / 4).max(10) as u64;
                let _ = out_tx.send(Message::Error {
                    code: ErrorCode::Busy,
                    context: hint_ms,
                    detail: format!(
                        "absorb queue full past {:?}; retry in {hint_ms} ms",
                        shared.cfg.busy_timeout
                    ),
                });
                return true;
            }
            std::thread::sleep(BUSY_POLL);
        }
    };
    let mut idle = Duration::ZERO;
    loop {
        match reader.read_event() {
            Ok(ReadEvent::Message(Message::Batch {
                epoch,
                agent: frame_agent,
                frame,
            })) => {
                idle = Duration::ZERO;
                shared
                    .stats
                    .bytes_on_wire
                    .fetch_add(frame.len() as u64, Ordering::Relaxed);
                // Trust the handshake identity over the per-frame echo;
                // a mismatch is a protocol slip worth flagging.
                if frame_agent != agent {
                    let _ = out_tx.send(Message::Error {
                        code: ErrorCode::Protocol,
                        context: epoch,
                        detail: format!("batch from agent {frame_agent} on session {agent}"),
                    });
                    continue;
                }
                match <FleetArena as Checkpoint>::restore(&frame) {
                    Err(e) => {
                        shared.stats.bad_frames.fetch_add(1, Ordering::Relaxed);
                        let _ = out_tx.send(Message::Error {
                            code: ErrorCode::BadFrame,
                            context: epoch,
                            detail: e.to_string(),
                        });
                    }
                    Ok(fleet) => {
                        if !enqueue(epoch, JobPayload::Full(Box::new(fleet)), frame) {
                            return;
                        }
                    }
                }
            }
            Ok(ReadEvent::Message(Message::BatchDelta {
                epoch,
                round,
                agent: frame_agent,
                frame,
            })) => {
                idle = Duration::ZERO;
                shared
                    .stats
                    .bytes_on_wire
                    .fetch_add(frame.len() as u64, Ordering::Relaxed);
                if proto < 2 {
                    // The negotiated session cannot carry deltas; the
                    // agent should have fallen back to full frames.
                    let _ = out_tx.send(Message::Error {
                        code: ErrorCode::Protocol,
                        context: epoch,
                        detail: format!("delta frame on a protocol-{proto} session"),
                    });
                    continue;
                }
                if frame_agent != agent {
                    let _ = out_tx.send(Message::Error {
                        code: ErrorCode::Protocol,
                        context: epoch,
                        detail: format!("delta from agent {frame_agent} on session {agent}"),
                    });
                    continue;
                }
                match FleetDeltaFrame::decode(&frame) {
                    Ok(delta) if delta.epoch == epoch && delta.round == round => {
                        if !enqueue(epoch, JobPayload::Delta(delta), frame) {
                            return;
                        }
                    }
                    Ok(delta) => {
                        // The envelope must agree with the payload it
                        // carries, or acks would name the wrong frame.
                        shared.stats.bad_frames.fetch_add(1, Ordering::Relaxed);
                        let _ = out_tx.send(Message::Error {
                            code: ErrorCode::BadFrame,
                            context: epoch,
                            detail: format!(
                                "envelope says epoch {epoch} round {round}, frame says epoch {} round {}",
                                delta.epoch, delta.round
                            ),
                        });
                    }
                    Err(e) => {
                        shared.stats.bad_frames.fetch_add(1, Ordering::Relaxed);
                        let _ = out_tx.send(Message::Error {
                            code: ErrorCode::BadFrame,
                            context: epoch,
                            detail: e.to_string(),
                        });
                    }
                }
            }
            Ok(ReadEvent::Message(Message::Goodbye)) => {
                let _ = out_tx.send(Message::Goodbye);
                return;
            }
            Ok(ReadEvent::Message(_)) => {
                let _ = out_tx.send(Message::Error {
                    code: ErrorCode::Protocol,
                    context: 0,
                    detail: "unexpected message on an ingest session".into(),
                });
            }
            Ok(ReadEvent::Corrupt(detail)) => {
                // The headline robustness behavior: answer with a typed
                // error frame and keep the connection.
                shared.stats.bad_frames.fetch_add(1, Ordering::Relaxed);
                let _ = out_tx.send(Message::Error {
                    code: ErrorCode::BadFrame,
                    context: 0,
                    detail,
                });
            }
            Ok(ReadEvent::TimedOut) => {
                if shared.draining() {
                    let _ = out_tx.send(Message::Error {
                        code: ErrorCode::Draining,
                        context: 0,
                        detail: "collector is draining".into(),
                    });
                    return;
                }
                idle += shared.cfg.read_deadline;
                if idle >= shared.cfg.idle_limit {
                    return;
                }
            }
            Ok(ReadEvent::Closed) => return,
            Err(NetError::Desync(detail)) => {
                shared.stats.desyncs.fetch_add(1, Ordering::Relaxed);
                let _ = out_tx.send(Message::Error {
                    code: ErrorCode::Desync,
                    context: 0,
                    detail,
                });
                return;
            }
            Err(NetError::Io(_)) => return,
        }
    }
}

/// One query connection: strict request/reply on a single thread.
fn query_conn(shared: &Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.cfg.read_deadline));
    let _ = stream.set_write_timeout(Some(shared.cfg.write_deadline));
    let mut reader = FrameReader::new(stream);
    // Replies are synchronous here, so the handshake writes directly.
    let pending = Mutex::new(Vec::new());
    let queue = |msg: Message| pending.lock().unwrap().push(msg);
    let accepted = handshake(shared, &mut reader, &queue, &[Role::Query]);
    for msg in pending.into_inner().unwrap() {
        if reader
            .inner_mut()
            .write_all(&sbitmap_stream::net::encode(&msg))
            .is_err()
        {
            return;
        }
    }
    if accepted.is_none() {
        return;
    }
    let mut idle = Duration::ZERO;
    loop {
        match reader.read_event() {
            Ok(ReadEvent::Message(Message::Query(req))) => {
                idle = Duration::ZERO;
                shared.stats.queries.fetch_add(1, Ordering::Relaxed);
                let reply = answer(shared, &req);
                let bytes = sbitmap_stream::net::encode(&Message::Reply(reply));
                if reader.inner_mut().write_all(&bytes).is_err() {
                    return;
                }
            }
            Ok(ReadEvent::Message(Message::Goodbye)) | Ok(ReadEvent::Closed) => return,
            Ok(ReadEvent::Message(_)) | Ok(ReadEvent::Corrupt(_)) => {
                let bytes = sbitmap_stream::net::encode(&Message::Error {
                    code: ErrorCode::Protocol,
                    context: 0,
                    detail: "query sessions accept Query frames only".into(),
                });
                if reader.inner_mut().write_all(&bytes).is_err() {
                    return;
                }
            }
            Ok(ReadEvent::TimedOut) => {
                if shared.draining() {
                    // Keep answering until the client leaves? No: the
                    // daemon is tearing down; tell the client and close.
                    let bytes = sbitmap_stream::net::encode(&Message::Error {
                        code: ErrorCode::Draining,
                        context: 0,
                        detail: "collector is draining".into(),
                    });
                    let _ = reader.inner_mut().write_all(&bytes);
                    return;
                }
                idle += shared.cfg.read_deadline;
                if idle >= shared.cfg.idle_limit {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Answer one query against the ring.
fn answer(shared: &Shared, req: &QueryRequest) -> QueryReply {
    match req {
        QueryRequest::Estimate(key) => {
            let ring = lock_ring(&shared.ring);
            if shared.cfg.panic_on_query == Some(*key) {
                // Test hook: die *while holding the ring lock* — the
                // regression fixture proving a poisoned ring mutex
                // cannot wedge later ingest or queries.
                panic!("injected query panic for key {key}");
            }
            QueryReply::Estimate(ring.estimate(*key))
        }
        QueryRequest::Fill(key) => {
            QueryReply::Fill(lock_ring(&shared.ring).window_fill(*key).map(|f| f as u64))
        }
        QueryRequest::TopK(k) => {
            let mut rows = lock_ring(&shared.ring).estimates_sorted();
            rows.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
            rows.truncate(usize::try_from(*k).unwrap_or(usize::MAX).min(rows.len()));
            QueryReply::TopK(rows)
        }
        QueryRequest::Summary => {
            let estimates = lock_ring(&shared.ring).estimates_sorted();
            let mut sample: Vec<f64> = estimates.iter().map(|&(_, e)| e).collect();
            let quantiles = if sample.is_empty() {
                Vec::new()
            } else {
                quantile_summary(&mut sample)
            };
            QueryReply::Summary {
                keys: estimates.len() as u64,
                quantiles,
            }
        }
        QueryRequest::Status => {
            let s = &shared.stats;
            QueryReply::Status {
                role: shared.node_role(),
                term: shared.term(),
                journal_seq: shared.journal_seq.load(Ordering::SeqCst),
                absorbed: s.frames_absorbed.load(Ordering::Relaxed),
                shed: s.busy_rejections.load(Ordering::Relaxed),
                replicated: s.replicated_frames.load(Ordering::Relaxed),
                peers: shared
                    .peers
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .len() as u64,
            }
        }
        QueryRequest::Promote => QueryReply::Promoted {
            term: shared.promote(),
        },
        QueryRequest::Drain => {
            shared.shutdown.store(true, Ordering::SeqCst);
            QueryReply::Draining
        }
    }
}
