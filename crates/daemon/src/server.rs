//! The collector daemon: TCP ingest + query listeners over a central
//! [`WindowedFleet`] ring.
//!
//! Concurrency layout (all std threads, no async runtime):
//!
//! ```text
//! ingest accept loop ──spawns──▶ per-connection handler
//!                                  ├─ reader (the handler thread):
//!                                  │    handshake, decode batches,
//!                                  │    push absorb jobs
//!                                  └─ writer thread: acks + errors
//! query accept loop  ──spawns──▶ per-connection request/reply handler
//! absorber thread    ◀── bounded sync_channel of decoded jobs
//! ```
//!
//! The **bounded absorb queue is the backpressure mechanism**: when the
//! absorber falls behind, `try_send` fails, the handler counts a
//! backpressure event and falls back to a blocking send — which stops it
//! reading its socket, which fills the kernel receive buffer, which
//! stalls the remote agent's sends. Flow control composes out of
//! `sync_channel` + TCP, no protocol machinery needed beyond the credit
//! window advertised in the handshake.
//!
//! Failure policy per the wire spec: a frame that fails its checksum or
//! payload validation is answered with a typed [`Message::Error`] frame
//! and the connection lives on; only a desynchronized byte stream (bad
//! magic, absurd length, EOF mid-frame) closes the connection, because
//! after desync no frame boundary can be trusted.

use std::io::{BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use sbitmap_core::codec::Checkpoint;
use sbitmap_core::{
    AbsorbOutcome, FleetArena, FleetDeltaFrame, KeyedEstimates, RateSchedule, SBitmapError,
    WindowedFleet,
};
use sbitmap_stream::net::{
    ConfigEcho, ErrorCode, FrameReader, FrameWriter, Message, NetError, QueryReply, QueryRequest,
    ReadEvent, Role, PROTO_VERSION,
};
use sbitmap_stream::quantile_summary;

/// Largest forward epoch jump a batch frame may demand. The ring
/// advances one rotation at a time, so an unbounded hostile epoch would
/// be a CPU DoS; no healthy agent ever runs this far ahead of the
/// collector.
const MAX_EPOCH_JUMP: u64 = 1 << 20;

/// How long the accept loops sleep between polls of the shutdown flag
/// when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Configuration of one daemon instance.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Ingest listener address (`127.0.0.1:0` picks a free port).
    pub ingest_addr: String,
    /// Query listener address.
    pub query_addr: String,
    /// Per-key design maximum cardinality.
    pub n_max: u64,
    /// Bits per key per epoch.
    pub m_bits: usize,
    /// Fleet seed.
    pub seed: u64,
    /// Window span in epochs.
    pub window: usize,
    /// Credit window advertised to agents: batch frames an agent may
    /// leave unacked before it must stop sending.
    pub credits: u32,
    /// Bound of the absorb queue, in decoded frames — the backpressure
    /// knob.
    pub queue_frames: usize,
    /// Per-connection read deadline; doubles as the shutdown-flag poll
    /// interval of blocked reads.
    pub read_deadline: Duration,
    /// Per-connection write deadline.
    pub write_deadline: Duration,
    /// A connection idle longer than this is closed.
    pub idle_limit: Duration,
    /// Where the final ring checkpoint is written on drain; `None`
    /// skips the write.
    pub checkpoint_path: Option<PathBuf>,
    /// Test hook: the absorber sleeps this long per frame, so the suite
    /// can force the bounded queue to fill and observe backpressure
    /// deterministically. Zero in production.
    pub absorb_stall: Duration,
    /// Highest protocol version this daemon speaks — the handshake
    /// answers `min(client, max_proto)`. Production leaves this at
    /// [`PROTO_VERSION`]; tests pin it to 1 to exercise a v2-only
    /// collector against delta-capable agents.
    pub max_proto: u16,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        Self {
            ingest_addr: "127.0.0.1:0".into(),
            query_addr: "127.0.0.1:0".into(),
            n_max: 1_500_000,
            m_bits: 8_000,
            seed: 0xc011,
            window: 8,
            credits: 4,
            queue_frames: 64,
            read_deadline: Duration::from_millis(50),
            write_deadline: Duration::from_millis(2_000),
            idle_limit: Duration::from_secs(10),
            checkpoint_path: None,
            absorb_stall: Duration::ZERO,
            max_proto: PROTO_VERSION,
        }
    }
}

/// Counters the daemon accumulates while serving (all monotone).
#[derive(Debug, Default)]
struct Stats {
    connections: AtomicU64,
    frames_absorbed: AtomicU64,
    duplicates: AtomicU64,
    expired: AtomicU64,
    bad_frames: AtomicU64,
    backpressure_events: AtomicU64,
    handshake_rejects: AtomicU64,
    desyncs: AtomicU64,
    queries: AtomicU64,
    bytes_on_wire: AtomicU64,
    missing_baselines: AtomicU64,
}

/// What [`Daemon::join`] returns after a graceful drain.
#[derive(Debug, Clone)]
pub struct DaemonReport {
    /// `(key, windowed estimate)` pairs, ascending key order.
    pub estimates: Vec<(u64, f64)>,
    /// The ring's open epoch at drain.
    pub final_epoch: u64,
    /// The complete tag-10 checkpoint of the drained ring (also written
    /// to [`DaemonConfig::checkpoint_path`] when set).
    pub final_checkpoint: Vec<u8>,
    /// Ingest + query connections accepted.
    pub connections: u64,
    /// Batch frames folded into the ring.
    pub frames_absorbed: u64,
    /// Batch frames skipped by the at-least-once guard.
    pub duplicates: u64,
    /// Batch frames for already-expired epochs.
    pub expired: u64,
    /// Frames answered with a typed error instead of being absorbed.
    pub bad_frames: u64,
    /// Times a handler found the absorb queue full and had to block.
    pub backpressure_events: u64,
    /// Handshakes rejected (version or config mismatch).
    pub handshake_rejects: u64,
    /// Connections dropped for stream desynchronization.
    pub desyncs: u64,
    /// Query requests answered.
    pub queries: u64,
    /// Total sketch-frame bytes received over ingest sessions (the
    /// payload of every `Batch`/`BatchDelta`, before decoding) — the
    /// number the v3 delta encoding exists to shrink.
    pub bytes_on_wire: u64,
    /// Delta frames rejected because their epoch's round-0 baseline had
    /// not been absorbed (each one told the agent to resync).
    pub missing_baselines: u64,
}

/// The sketch payload of one decoded ingest frame.
enum JobPayload {
    /// A full v2 `sketch-fleet` checkpoint.
    Full(Box<FleetArena>),
    /// One round of a v3 delta chain (the wire `round` is validated
    /// against the frame before queueing).
    Delta(FleetDeltaFrame),
}

/// One decoded batch frame queued for the absorber.
struct Job {
    epoch: u64,
    agent: u64,
    payload: JobPayload,
    ack: mpsc::Sender<Message>,
}

/// State shared by every daemon thread.
struct Shared {
    cfg: DaemonConfig,
    echo: ConfigEcho,
    ring: Mutex<WindowedFleet>,
    shutdown: AtomicBool,
    stats: Stats,
}

impl Shared {
    fn draining(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// A running daemon. Dropping it without [`Daemon::join`] leaks the
/// serving threads; always drain + join.
pub struct Daemon {
    shared: Arc<Shared>,
    ingest_addr: SocketAddr,
    query_addr: SocketAddr,
    accept_threads: Vec<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    absorber: JoinHandle<()>,
    job_tx: mpsc::SyncSender<Job>,
}

impl Daemon {
    /// Bind both listeners and start serving.
    ///
    /// # Errors
    ///
    /// Un-dimensionable sketch parameters, a zero window, or a bind
    /// failure.
    pub fn start(cfg: DaemonConfig) -> Result<Self, String> {
        if cfg.credits == 0 || cfg.queue_frames == 0 {
            return Err("credits and queue_frames must be at least 1".into());
        }
        let schedule =
            Arc::new(RateSchedule::from_memory(cfg.n_max, cfg.m_bits).map_err(|e| e.to_string())?);
        let echo = ConfigEcho {
            n_max: cfg.n_max,
            m: cfg.m_bits as u64,
            sampling_bits: schedule.split().sampling_bits(),
            seed: cfg.seed,
            window: cfg.window as u64,
        };
        let ring = WindowedFleet::with_schedule(schedule, cfg.seed, cfg.window)
            .map_err(|e| e.to_string())?;
        let ingest = TcpListener::bind(&cfg.ingest_addr)
            .map_err(|e| format!("bind {}: {e}", cfg.ingest_addr))?;
        let query = TcpListener::bind(&cfg.query_addr)
            .map_err(|e| format!("bind {}: {e}", cfg.query_addr))?;
        let ingest_addr = ingest.local_addr().map_err(|e| e.to_string())?;
        let query_addr = query.local_addr().map_err(|e| e.to_string())?;
        ingest.set_nonblocking(true).map_err(|e| e.to_string())?;
        query.set_nonblocking(true).map_err(|e| e.to_string())?;

        let shared = Arc::new(Shared {
            cfg,
            echo,
            ring: Mutex::new(ring),
            shutdown: AtomicBool::new(false),
            stats: Stats::default(),
        });
        let (job_tx, job_rx) = mpsc::sync_channel::<Job>(shared.cfg.queue_frames);
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let absorber = {
            let shared = shared.clone();
            std::thread::spawn(move || absorber_loop(&shared, &job_rx))
        };
        let mut accept_threads = Vec::with_capacity(2);
        {
            let shared = shared.clone();
            let handlers = handlers.clone();
            let job_tx = job_tx.clone();
            accept_threads.push(std::thread::spawn(move || {
                accept_loop(&shared, &ingest, &handlers, move |shared, stream| {
                    let job_tx = job_tx.clone();
                    move || ingest_conn(&shared, stream, &job_tx)
                })
            }));
        }
        {
            let shared = shared.clone();
            let handlers = handlers.clone();
            accept_threads.push(std::thread::spawn(move || {
                accept_loop(&shared, &query, &handlers, |shared, stream| {
                    move || query_conn(&shared, stream)
                })
            }));
        }
        Ok(Self {
            shared,
            ingest_addr,
            query_addr,
            accept_threads,
            handlers,
            absorber,
            job_tx,
        })
    }

    /// The bound ingest address (resolves port 0).
    pub fn ingest_addr(&self) -> SocketAddr {
        self.ingest_addr
    }

    /// The bound query address.
    pub fn query_addr(&self) -> SocketAddr {
        self.query_addr
    }

    /// The sketch configuration the daemon echoes in handshakes.
    pub fn config_echo(&self) -> ConfigEcho {
        self.shared.echo
    }

    /// Flip the drain flag: acceptors stop, open connections are told
    /// [`ErrorCode::Draining`] on their next deadline tick, in-flight
    /// frames finish absorbing.
    pub fn drain(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// `true` once a drain has been requested (locally or via a
    /// [`QueryRequest::Drain`]).
    pub fn is_draining(&self) -> bool {
        self.shared.draining()
    }

    /// Block until the daemon has fully drained (the flag must be — or
    /// become — set, e.g. via [`Daemon::drain`] or a remote
    /// [`QueryRequest::Drain`]), write the final ring checkpoint, and
    /// return the report.
    ///
    /// # Errors
    ///
    /// A panicked serving thread, or a failed checkpoint write.
    pub fn join(self) -> Result<DaemonReport, String> {
        for t in self.accept_threads {
            t.join().map_err(|_| "accept thread panicked".to_string())?;
        }
        // No new connections past this point; existing handlers observe
        // the flag within one read deadline.
        let handlers = std::mem::take(&mut *self.handlers.lock().unwrap());
        for t in handlers {
            t.join()
                .map_err(|_| "handler thread panicked".to_string())?;
        }
        drop(self.job_tx);
        self.absorber
            .join()
            .map_err(|_| "absorber thread panicked".to_string())?;
        let (estimates, final_epoch, final_checkpoint) = {
            let ring = self.shared.ring.lock().unwrap();
            (
                ring.estimates_sorted(),
                ring.current_epoch(),
                ring.checkpoint(),
            )
        };
        if let Some(path) = &self.shared.cfg.checkpoint_path {
            std::fs::write(path, &final_checkpoint)
                .map_err(|e| format!("checkpoint write {}: {e}", path.display()))?;
        }
        let s = &self.shared.stats;
        Ok(DaemonReport {
            estimates,
            final_epoch,
            final_checkpoint,
            connections: s.connections.load(Ordering::Relaxed),
            frames_absorbed: s.frames_absorbed.load(Ordering::Relaxed),
            duplicates: s.duplicates.load(Ordering::Relaxed),
            expired: s.expired.load(Ordering::Relaxed),
            bad_frames: s.bad_frames.load(Ordering::Relaxed),
            backpressure_events: s.backpressure_events.load(Ordering::Relaxed),
            handshake_rejects: s.handshake_rejects.load(Ordering::Relaxed),
            desyncs: s.desyncs.load(Ordering::Relaxed),
            queries: s.queries.load(Ordering::Relaxed),
            bytes_on_wire: s.bytes_on_wire.load(Ordering::Relaxed),
            missing_baselines: s.missing_baselines.load(Ordering::Relaxed),
        })
    }
}

/// Accept until the drain flag flips, spawning one handler per
/// connection. `make_handler` builds the per-connection closure (which
/// captures the shared state and, for ingest, a queue sender).
fn accept_loop<F, G>(
    shared: &Arc<Shared>,
    listener: &TcpListener,
    handlers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
    make_handler: F,
) where
    F: Fn(Arc<Shared>, TcpStream) -> G,
    G: FnOnce() + Send + 'static,
{
    while !shared.draining() {
        match listener.accept() {
            Ok((stream, _)) => {
                shared.stats.connections.fetch_add(1, Ordering::Relaxed);
                // Accepted sockets must block (with timeouts); only the
                // listener polls.
                let _ = stream.set_nonblocking(false);
                let handler = make_handler(shared.clone(), stream);
                handlers.lock().unwrap().push(std::thread::spawn(handler));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// The single ring writer: drains the bounded job queue until every
/// sender is gone, acking each frame with its absorb outcome.
fn absorber_loop(shared: &Arc<Shared>, rx: &mpsc::Receiver<Job>) {
    for job in rx {
        if !shared.cfg.absorb_stall.is_zero() {
            std::thread::sleep(shared.cfg.absorb_stall);
        }
        let msg = {
            let mut ring = shared.ring.lock().unwrap();
            let current = ring.current_epoch();
            if job.epoch > current && job.epoch - current > MAX_EPOCH_JUMP {
                shared.stats.bad_frames.fetch_add(1, Ordering::Relaxed);
                Message::Error {
                    code: ErrorCode::EpochOutOfRange,
                    context: job.epoch,
                    detail: format!("epoch {} is too far ahead of {current}", job.epoch),
                }
            } else {
                if job.epoch > current {
                    ring.advance_to(job.epoch).expect("monotone advance");
                }
                let absorbed = match &job.payload {
                    JobPayload::Full(fleet) => ring.absorb_epoch_from(job.agent, job.epoch, fleet),
                    JobPayload::Delta(frame) => ring.absorb_delta_from(job.agent, frame),
                };
                match absorbed {
                    Ok(outcome) => {
                        let counter = match outcome {
                            AbsorbOutcome::Absorbed => &shared.stats.frames_absorbed,
                            AbsorbOutcome::Duplicate => &shared.stats.duplicates,
                            AbsorbOutcome::Expired => &shared.stats.expired,
                        };
                        counter.fetch_add(1, Ordering::Relaxed);
                        let outcome = match outcome {
                            AbsorbOutcome::Absorbed => sbitmap_stream::net::AckOutcome::Absorbed,
                            AbsorbOutcome::Duplicate => sbitmap_stream::net::AckOutcome::Duplicate,
                            AbsorbOutcome::Expired => sbitmap_stream::net::AckOutcome::Expired,
                        };
                        match &job.payload {
                            JobPayload::Full(_) => Message::Ack {
                                epoch: job.epoch,
                                outcome,
                            },
                            JobPayload::Delta(frame) => Message::AckDelta {
                                epoch: job.epoch,
                                round: frame.round,
                                outcome,
                            },
                        }
                    }
                    Err(SBitmapError::MissingBaseline { epoch, round }) => {
                        // Not corruption: the chain head never landed
                        // (daemon restart, expiry race). The typed error
                        // tells the agent to resend the epoch from its
                        // round-0 baseline.
                        shared
                            .stats
                            .missing_baselines
                            .fetch_add(1, Ordering::Relaxed);
                        Message::Error {
                            code: ErrorCode::MissingBaseline,
                            context: epoch,
                            detail: format!(
                                "delta round {round} for epoch {epoch} has no absorbed baseline"
                            ),
                        }
                    }
                    Err(e) => {
                        shared.stats.bad_frames.fetch_add(1, Ordering::Relaxed);
                        Message::Error {
                            code: ErrorCode::BadFrame,
                            context: job.epoch,
                            detail: e.to_string(),
                        }
                    }
                }
            }
        };
        let _ = job.ack.send(msg);
    }
}

/// Read events until a `Hello` arrives (tolerating deadline ticks up to
/// the idle limit); validate it for `want` role; send `Welcome` on
/// success. Returns the agent id and the negotiated session protocol —
/// `min(client, max_proto)`, so a delta-capable agent talking to a
/// v2-only collector lands on protocol 1 and ships full frames — or
/// `None` when the session should close (the typed rejection has
/// already been queued).
fn handshake(
    shared: &Shared,
    reader: &mut FrameReader<TcpStream>,
    out: &impl Fn(Message),
    want: Role,
) -> Option<(u64, u16)> {
    let mut idle = Duration::ZERO;
    let (proto, role, agent, config) = loop {
        if shared.draining() {
            out(Message::Error {
                code: ErrorCode::Draining,
                context: 0,
                detail: "collector is draining".into(),
            });
            return None;
        }
        match reader.read_event() {
            Ok(ReadEvent::Message(Message::Hello {
                proto,
                role,
                agent,
                config,
            })) => break (proto, role, agent, config),
            Ok(ReadEvent::Message(_)) => {
                out(Message::Error {
                    code: ErrorCode::Protocol,
                    context: 0,
                    detail: "expected Hello".into(),
                });
                return None;
            }
            Ok(ReadEvent::Corrupt(detail)) => {
                // A corrupt handshake is rejected outright: there is no
                // session to keep alive yet.
                shared.stats.bad_frames.fetch_add(1, Ordering::Relaxed);
                out(Message::Error {
                    code: ErrorCode::BadFrame,
                    context: 0,
                    detail,
                });
                return None;
            }
            Ok(ReadEvent::TimedOut) => {
                idle += shared.cfg.read_deadline;
                if idle >= shared.cfg.idle_limit {
                    return None;
                }
            }
            Ok(ReadEvent::Closed) => return None,
            Err(NetError::Desync(detail)) => {
                shared.stats.desyncs.fetch_add(1, Ordering::Relaxed);
                out(Message::Error {
                    code: ErrorCode::Desync,
                    context: 0,
                    detail,
                });
                return None;
            }
            Err(NetError::Io(_)) => return None,
        }
    };
    let session_proto = proto.min(shared.cfg.max_proto);
    if session_proto == 0 {
        shared
            .stats
            .handshake_rejects
            .fetch_add(1, Ordering::Relaxed);
        out(Message::Error {
            code: ErrorCode::VersionMismatch,
            context: u64::from(proto),
            detail: format!(
                "collector speaks protocols 1..={}, peer spoke {proto}",
                shared.cfg.max_proto
            ),
        });
        return None;
    }
    if role != want {
        shared
            .stats
            .handshake_rejects
            .fetch_add(1, Ordering::Relaxed);
        out(Message::Error {
            code: ErrorCode::Protocol,
            context: 0,
            detail: "wrong role for this port".into(),
        });
        return None;
    }
    // Only ingest sessions must agree on the sketch configuration; a
    // query client reads whatever the collector holds.
    if want == Role::Ingest && config != shared.echo {
        shared
            .stats
            .handshake_rejects
            .fetch_add(1, Ordering::Relaxed);
        out(Message::Error {
            code: ErrorCode::ConfigMismatch,
            context: 0,
            detail: format!("collector config {:?}, peer config {config:?}", shared.echo),
        });
        return None;
    }
    out(Message::Welcome {
        proto: session_proto,
        credits: shared.cfg.credits,
        config: shared.echo,
    });
    Some((agent, session_proto))
}

/// One ingest connection: handshake, then decode batches into absorb
/// jobs until EOF, desync, idle timeout or drain.
fn ingest_conn(shared: &Arc<Shared>, stream: TcpStream, job_tx: &mpsc::SyncSender<Job>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.cfg.read_deadline));
    let _ = stream.set_write_timeout(Some(shared.cfg.write_deadline));
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    // Acks are produced by the absorber thread while this thread is
    // blocked reading, so writes go through a dedicated writer thread
    // fed by an unbounded channel (acks are small; the bound that
    // matters is the job queue).
    let (out_tx, out_rx) = mpsc::channel::<Message>();
    let writer = std::thread::spawn(move || {
        let mut fw = FrameWriter::new(BufWriter::new(write_half));
        let mut dead = false;
        for msg in out_rx {
            if !dead && fw.send(&msg).is_err() {
                dead = true; // keep draining so ack sends never block
            }
        }
    });
    let out = |msg: Message| {
        let _ = out_tx.send(msg);
    };

    let mut reader = FrameReader::new(stream);
    if let Some((agent, proto)) = handshake(shared, &mut reader, &out, Role::Ingest) {
        ingest_session(shared, &mut reader, &out_tx, job_tx, agent, proto);
    }
    drop(out_tx);
    let _ = writer.join();
}

/// The post-handshake ingest loop.
fn ingest_session(
    shared: &Arc<Shared>,
    reader: &mut FrameReader<TcpStream>,
    out_tx: &mpsc::Sender<Message>,
    job_tx: &mpsc::SyncSender<Job>,
    agent: u64,
    proto: u16,
) {
    // Queue a decoded payload, blocking on the bounded job queue when
    // the absorber falls behind. Returns `false` when the daemon side
    // is gone and the session should end.
    let enqueue = |epoch: u64, payload: JobPayload| -> bool {
        let job = Job {
            epoch,
            agent,
            payload,
            ack: out_tx.clone(),
        };
        match job_tx.try_send(job) {
            Ok(()) => true,
            Err(mpsc::TrySendError::Full(job)) => {
                // The queue is the backpressure valve: block here (stop
                // reading the socket) until the absorber catches up.
                shared
                    .stats
                    .backpressure_events
                    .fetch_add(1, Ordering::Relaxed);
                job_tx.send(job).is_ok()
            }
            Err(mpsc::TrySendError::Disconnected(_)) => false,
        }
    };
    let mut idle = Duration::ZERO;
    loop {
        match reader.read_event() {
            Ok(ReadEvent::Message(Message::Batch {
                epoch,
                agent: frame_agent,
                frame,
            })) => {
                idle = Duration::ZERO;
                shared
                    .stats
                    .bytes_on_wire
                    .fetch_add(frame.len() as u64, Ordering::Relaxed);
                // Trust the handshake identity over the per-frame echo;
                // a mismatch is a protocol slip worth flagging.
                if frame_agent != agent {
                    let _ = out_tx.send(Message::Error {
                        code: ErrorCode::Protocol,
                        context: epoch,
                        detail: format!("batch from agent {frame_agent} on session {agent}"),
                    });
                    continue;
                }
                match <FleetArena as Checkpoint>::restore(&frame) {
                    Err(e) => {
                        shared.stats.bad_frames.fetch_add(1, Ordering::Relaxed);
                        let _ = out_tx.send(Message::Error {
                            code: ErrorCode::BadFrame,
                            context: epoch,
                            detail: e.to_string(),
                        });
                    }
                    Ok(fleet) => {
                        if !enqueue(epoch, JobPayload::Full(Box::new(fleet))) {
                            return;
                        }
                    }
                }
            }
            Ok(ReadEvent::Message(Message::BatchDelta {
                epoch,
                round,
                agent: frame_agent,
                frame,
            })) => {
                idle = Duration::ZERO;
                shared
                    .stats
                    .bytes_on_wire
                    .fetch_add(frame.len() as u64, Ordering::Relaxed);
                if proto < 2 {
                    // The negotiated session cannot carry deltas; the
                    // agent should have fallen back to full frames.
                    let _ = out_tx.send(Message::Error {
                        code: ErrorCode::Protocol,
                        context: epoch,
                        detail: format!("delta frame on a protocol-{proto} session"),
                    });
                    continue;
                }
                if frame_agent != agent {
                    let _ = out_tx.send(Message::Error {
                        code: ErrorCode::Protocol,
                        context: epoch,
                        detail: format!("delta from agent {frame_agent} on session {agent}"),
                    });
                    continue;
                }
                match FleetDeltaFrame::decode(&frame) {
                    Ok(delta) if delta.epoch == epoch && delta.round == round => {
                        if !enqueue(epoch, JobPayload::Delta(delta)) {
                            return;
                        }
                    }
                    Ok(delta) => {
                        // The envelope must agree with the payload it
                        // carries, or acks would name the wrong frame.
                        shared.stats.bad_frames.fetch_add(1, Ordering::Relaxed);
                        let _ = out_tx.send(Message::Error {
                            code: ErrorCode::BadFrame,
                            context: epoch,
                            detail: format!(
                                "envelope says epoch {epoch} round {round}, frame says epoch {} round {}",
                                delta.epoch, delta.round
                            ),
                        });
                    }
                    Err(e) => {
                        shared.stats.bad_frames.fetch_add(1, Ordering::Relaxed);
                        let _ = out_tx.send(Message::Error {
                            code: ErrorCode::BadFrame,
                            context: epoch,
                            detail: e.to_string(),
                        });
                    }
                }
            }
            Ok(ReadEvent::Message(Message::Goodbye)) => {
                let _ = out_tx.send(Message::Goodbye);
                return;
            }
            Ok(ReadEvent::Message(_)) => {
                let _ = out_tx.send(Message::Error {
                    code: ErrorCode::Protocol,
                    context: 0,
                    detail: "unexpected message on an ingest session".into(),
                });
            }
            Ok(ReadEvent::Corrupt(detail)) => {
                // The headline robustness behavior: answer with a typed
                // error frame and keep the connection.
                shared.stats.bad_frames.fetch_add(1, Ordering::Relaxed);
                let _ = out_tx.send(Message::Error {
                    code: ErrorCode::BadFrame,
                    context: 0,
                    detail,
                });
            }
            Ok(ReadEvent::TimedOut) => {
                if shared.draining() {
                    let _ = out_tx.send(Message::Error {
                        code: ErrorCode::Draining,
                        context: 0,
                        detail: "collector is draining".into(),
                    });
                    return;
                }
                idle += shared.cfg.read_deadline;
                if idle >= shared.cfg.idle_limit {
                    return;
                }
            }
            Ok(ReadEvent::Closed) => return,
            Err(NetError::Desync(detail)) => {
                shared.stats.desyncs.fetch_add(1, Ordering::Relaxed);
                let _ = out_tx.send(Message::Error {
                    code: ErrorCode::Desync,
                    context: 0,
                    detail,
                });
                return;
            }
            Err(NetError::Io(_)) => return,
        }
    }
}

/// One query connection: strict request/reply on a single thread.
fn query_conn(shared: &Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.cfg.read_deadline));
    let _ = stream.set_write_timeout(Some(shared.cfg.write_deadline));
    let mut reader = FrameReader::new(stream);
    // Replies are synchronous here, so the handshake writes directly.
    let pending = Mutex::new(Vec::new());
    let queue = |msg: Message| pending.lock().unwrap().push(msg);
    let accepted = handshake(shared, &mut reader, &queue, Role::Query);
    for msg in pending.into_inner().unwrap() {
        if reader
            .inner_mut()
            .write_all(&sbitmap_stream::net::encode(&msg))
            .is_err()
        {
            return;
        }
    }
    if accepted.is_none() {
        return;
    }
    let mut idle = Duration::ZERO;
    loop {
        match reader.read_event() {
            Ok(ReadEvent::Message(Message::Query(req))) => {
                idle = Duration::ZERO;
                shared.stats.queries.fetch_add(1, Ordering::Relaxed);
                let reply = answer(shared, &req);
                let bytes = sbitmap_stream::net::encode(&Message::Reply(reply));
                if reader.inner_mut().write_all(&bytes).is_err() {
                    return;
                }
            }
            Ok(ReadEvent::Message(Message::Goodbye)) | Ok(ReadEvent::Closed) => return,
            Ok(ReadEvent::Message(_)) | Ok(ReadEvent::Corrupt(_)) => {
                let bytes = sbitmap_stream::net::encode(&Message::Error {
                    code: ErrorCode::Protocol,
                    context: 0,
                    detail: "query sessions accept Query frames only".into(),
                });
                if reader.inner_mut().write_all(&bytes).is_err() {
                    return;
                }
            }
            Ok(ReadEvent::TimedOut) => {
                if shared.draining() {
                    // Keep answering until the client leaves? No: the
                    // daemon is tearing down; tell the client and close.
                    let bytes = sbitmap_stream::net::encode(&Message::Error {
                        code: ErrorCode::Draining,
                        context: 0,
                        detail: "collector is draining".into(),
                    });
                    let _ = reader.inner_mut().write_all(&bytes);
                    return;
                }
                idle += shared.cfg.read_deadline;
                if idle >= shared.cfg.idle_limit {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Answer one query against the ring.
fn answer(shared: &Shared, req: &QueryRequest) -> QueryReply {
    match req {
        QueryRequest::Estimate(key) => {
            QueryReply::Estimate(shared.ring.lock().unwrap().estimate(*key))
        }
        QueryRequest::Fill(key) => QueryReply::Fill(
            shared
                .ring
                .lock()
                .unwrap()
                .window_fill(*key)
                .map(|f| f as u64),
        ),
        QueryRequest::TopK(k) => {
            let mut rows = shared.ring.lock().unwrap().estimates_sorted();
            rows.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
            rows.truncate(usize::try_from(*k).unwrap_or(usize::MAX).min(rows.len()));
            QueryReply::TopK(rows)
        }
        QueryRequest::Summary => {
            let estimates = shared.ring.lock().unwrap().estimates_sorted();
            let mut sample: Vec<f64> = estimates.iter().map(|&(_, e)| e).collect();
            let quantiles = if sample.is_empty() {
                Vec::new()
            } else {
                quantile_summary(&mut sample)
            };
            QueryReply::Summary {
                keys: estimates.len() as u64,
                quantiles,
            }
        }
        QueryRequest::Drain => {
            shared.shutdown.store(true, Ordering::SeqCst);
            QueryReply::Draining
        }
    }
}
