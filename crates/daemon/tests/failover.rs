//! Kill-and-failover: the **primary** collector child is aborted (the
//! moral equivalent of `kill -9`) at seeded points of its pipeline —
//! mid-absorb, mid-journal-append, mid-snapshot, and right after a
//! record was replicated but before its ack left — the standby is
//! promoted, the agents re-route to it, and the drained standby's top-k
//! estimates and quantile summary must be **bit-identical** to an
//! uncrashed single-node reference run. That is the whole claim of WAL
//! shipping: acked ⇒ replicated, and everything unacked is retransmitted
//! and deduplicated by the absorb guard (exactly-once-effective).
//!
//! Children are `src/bin/crashd.rs` instances located through
//! `CARGO_BIN_EXE_crashd`; the standby follows via `CRASHD_STANDBY_OF`
//! and is promoted through a `QueryRequest::Promote` on its query port.

use std::io::{BufRead, BufReader, Lines};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdout, Command, Stdio};
use std::time::{Duration, Instant};

use sbitmap_core::RateSchedule;
use sbitmap_daemon::{query_once, run_agent_rounds_failover, AgentConfig, Backoff};
use sbitmap_stream::net::{ConfigEcho, Message, NodeRole, QueryReply, QueryRequest};
use sbitmap_stream::{DeltaFrameSource, WindowedPipelineConfig};

fn pcfg() -> WindowedPipelineConfig {
    WindowedPipelineConfig {
        links: 12,
        shards: 2,
        n_max: 50_000,
        m_bits: 2_000,
        window: 3,
        epochs: 5,
        rounds: 2,
        seed: 7,
    }
}

fn echo() -> ConfigEcho {
    let p = pcfg();
    let schedule = RateSchedule::from_memory(p.n_max, p.m_bits).unwrap();
    ConfigEcho {
        n_max: p.n_max,
        m: p.m_bits as u64,
        sampling_bits: schedule.split().sampling_bits(),
        seed: p.seed,
        window: p.window as u64,
        term: 0,
    }
}

struct Collector {
    child: Child,
    ingest: SocketAddr,
    query: SocketAddr,
    lines: Lines<BufReader<ChildStdout>>,
}

fn spawn_crashd(
    dir: &Path,
    crash: Option<(&str, u64)>,
    standby_of: Option<SocketAddr>,
) -> Collector {
    let p = pcfg();
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_crashd"));
    cmd.env("CRASHD_DATA_DIR", dir)
        .env("CRASHD_N_MAX", p.n_max.to_string())
        .env("CRASHD_M_BITS", p.m_bits.to_string())
        .env("CRASHD_SEED", p.seed.to_string())
        .env("CRASHD_WINDOW", p.window.to_string())
        .env("CRASHD_SNAPSHOT_EVERY", "3")
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    if let Some((site, after)) = crash {
        cmd.env("CRASHD_CRASH_SITE", site)
            .env("CRASHD_CRASH_AFTER", after.to_string());
    }
    if let Some(addr) = standby_of {
        cmd.env("CRASHD_STANDBY_OF", addr.to_string());
    }
    let mut child = cmd.spawn().expect("spawn crashd");
    let mut lines = BufReader::new(child.stdout.take().unwrap()).lines();
    let mut ingest = None;
    let mut query = None;
    for line in lines.by_ref() {
        let line = line.unwrap();
        if let Some(addr) = line.strip_prefix("INGEST ") {
            ingest = Some(addr.parse().unwrap());
        } else if let Some(addr) = line.strip_prefix("QUERY ") {
            query = Some(addr.parse().unwrap());
        } else if line == "READY" {
            break;
        }
    }
    Collector {
        child,
        ingest: ingest.expect("crashd printed INGEST"),
        query: query.expect("crashd printed QUERY"),
        lines,
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sbitmapd-failover-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn ask(query: SocketAddr, req: &QueryRequest) -> QueryReply {
    let stream = TcpStream::connect(query).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_millis(10)))
        .unwrap();
    match query_once(stream, req, Duration::from_secs(5)).unwrap() {
        Message::Reply(r) => r,
        other => panic!("expected Reply, got {other:?}"),
    }
}

/// Poll a primary's `Status` until it reports an attached standby.
fn wait_for_peer(query: SocketAddr) {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        if let QueryReply::Status { peers, .. } = ask(query, &QueryRequest::Status) {
            if peers >= 1 {
                return;
            }
        }
        assert!(
            Instant::now() < deadline,
            "standby never attached to the primary"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn agent_cfg(shard: usize) -> AgentConfig {
    AgentConfig {
        // The primary will vanish mid-session and the standby answers
        // `NotPrimary` until the babysitter promotes it: plenty of
        // patient, fast-paced attempts rotating through the list.
        max_attempts: 600,
        ack_timeout: Duration::from_millis(300),
        backoff: Backoff {
            base: Duration::from_millis(2),
            cap: Duration::from_millis(40),
            seed: shard as u64 + 1,
        },
        ..AgentConfig::new(shard as u64 + 1, echo())
    }
}

fn spawn_agents(
    addrs: &[SocketAddr],
) -> Vec<std::thread::JoinHandle<Result<sbitmap_daemon::AgentReport, String>>> {
    let p = pcfg();
    let addr_strings: Vec<String> = addrs.iter().map(|a| a.to_string()).collect();
    (0..p.shards)
        .map(|shard| {
            let backlog = DeltaFrameSource::new(&p, shard).unwrap().collect_epochs();
            let addrs = addr_strings.clone();
            std::thread::spawn(move || {
                run_agent_rounds_failover(
                    &agent_cfg(shard),
                    backlog,
                    &addrs,
                    Duration::from_millis(250),
                    Duration::from_millis(10),
                )
            })
        })
        .collect()
}

/// The uncrashed single-node reference: one primary, no standby, no
/// crash point — what every failover run must converge back to.
fn reference_outcome() -> (QueryReply, QueryReply) {
    let dir = scratch_dir("ref");
    let col = spawn_crashd(&dir, None, None);
    let workers = spawn_agents(&[col.ingest]);
    for w in workers {
        w.join().unwrap().expect("reference agent finished");
    }
    let topk = ask(col.query, &QueryRequest::TopK(64));
    let summary = ask(col.query, &QueryRequest::Summary);
    assert_eq!(ask(col.query, &QueryRequest::Drain), QueryReply::Draining);
    let mut col = col;
    assert!(col.child.wait().unwrap().success());
    let _ = std::fs::remove_dir_all(&dir);
    (topk, summary)
}

/// One failover scenario: primary (with a seeded crash point) + standby,
/// agents on the ordered address list; when the crash fires the standby
/// is promoted and the drained standby's state is returned.
fn run_failover(site: &str, after: u64) -> (QueryReply, QueryReply, u64) {
    let p_dir = scratch_dir(&format!("{site}-primary"));
    let s_dir = scratch_dir(&format!("{site}-standby"));
    let mut primary = spawn_crashd(&p_dir, Some((site, after)), None);
    let mut standby = spawn_crashd(&s_dir, None, Some(primary.ingest));
    wait_for_peer(primary.query);

    let workers = spawn_agents(&[primary.ingest, standby.ingest]);

    // Babysit: the crash point must fire; promote the standby the
    // moment the primary is gone.
    loop {
        if let Some(status) = primary.child.try_wait().unwrap() {
            assert!(
                !status.success(),
                "{site}: primary must die at the crash point"
            );
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    match ask(standby.query, &QueryRequest::Promote) {
        QueryReply::Promoted { term } => assert_eq!(term, 2, "{site}: promotion bumps the term"),
        other => panic!("{site}: expected Promoted, got {other:?}"),
    }
    match ask(standby.query, &QueryRequest::Status) {
        QueryReply::Status { role, term, .. } => {
            assert_eq!(
                role,
                NodeRole::Primary,
                "{site}: promoted standby serves as primary"
            );
            assert_eq!(term, 2);
        }
        other => panic!("{site}: expected Status, got {other:?}"),
    }

    for w in workers {
        w.join()
            .unwrap()
            .unwrap_or_else(|e| panic!("{site}: agent failed after failover: {e}"));
    }

    let topk = ask(standby.query, &QueryRequest::TopK(64));
    let summary = ask(standby.query, &QueryRequest::Summary);
    assert_eq!(
        ask(standby.query, &QueryRequest::Drain),
        QueryReply::Draining
    );
    assert!(standby.child.wait().unwrap().success());
    let mut replicated = 0;
    for line in standby.lines.by_ref() {
        let line = line.unwrap();
        if let Some(rest) = line.strip_prefix("REPORT ") {
            for kv in rest.split_whitespace() {
                if let Some(v) = kv.strip_prefix("replicated=") {
                    replicated = v.parse().unwrap();
                }
            }
        }
    }
    let _ = std::fs::remove_dir_all(&p_dir);
    let _ = std::fs::remove_dir_all(&s_dir);
    (topk, summary, replicated)
}

#[test]
fn killed_primary_fails_over_bit_identical() {
    let (ref_topk, ref_summary) = reference_outcome();
    match &ref_topk {
        QueryReply::TopK(rows) => assert_eq!(rows.len(), pcfg().links),
        other => panic!("expected TopK, got {other:?}"),
    }

    // Every seeded crash site of the primary's pipeline, each
    // mid-window: 2 shards x 5 epochs x 2 delta rounds = 20 absorbed
    // frames with a snapshot every 3. `after-replicate` aborts with a
    // record replicated but its ack withheld — the exactly-once-
    // effective case (retransmit + absorb-guard dedup).
    for (site, after) in [
        ("absorb-before-journal", 8),
        ("mid-journal-append", 8),
        ("after-replicate", 8),
        ("mid-snapshot-write", 2),
        ("after-snapshot-rename", 2),
    ] {
        let (topk, summary, replicated) = run_failover(site, after);
        assert!(
            replicated > 0,
            "{site}: the standby must have absorbed replicated records"
        );
        assert_eq!(
            topk, ref_topk,
            "{site}: post-promotion top-k must be bit-identical to the uncrashed run"
        );
        assert_eq!(
            summary, ref_summary,
            "{site}: post-promotion quantile summary must be bit-identical to the uncrashed run"
        );
    }
}
