//! Hostile recovery inputs: hand-crafted data directories fed to
//! [`Daemon::start`], proving that a truncated tail, a bit-flipped
//! record, a resealed record, a config-mismatched journal or snapshot,
//! and a pre-snapshot record are each rejected or skipped with the ring
//! provably untouched — the recovered state always equals a clean ring
//! that absorbed exactly the surviving records.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use sbitmap_core::codec::Checkpoint;
use sbitmap_core::journal::{self, JournalConfig, JournalRecord, JournalWriter};
use sbitmap_core::{FleetArena, RateSchedule, WindowedFleet};
use sbitmap_daemon::{Daemon, DaemonConfig, DaemonReport};

const N_MAX: u64 = 50_000;
const M_BITS: usize = 2_000;
const SEED: u64 = 7;
const WINDOW: usize = 3;

fn schedule() -> Arc<RateSchedule> {
    Arc::new(RateSchedule::from_memory(N_MAX, M_BITS).unwrap())
}

fn jcfg() -> JournalConfig {
    JournalConfig {
        n_max: N_MAX,
        m: M_BITS as u64,
        sampling_bits: schedule().split().sampling_bits(),
        seed: SEED,
        window: WINDOW as u64,
    }
}

fn dcfg(dir: &std::path::Path) -> DaemonConfig {
    DaemonConfig {
        n_max: N_MAX,
        m_bits: M_BITS,
        seed: SEED,
        window: WINDOW,
        data_dir: Some(dir.to_path_buf()),
        read_deadline: Duration::from_millis(10),
        ..DaemonConfig::default()
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sbitmapd-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A tag-9 fleet frame touching `key` with a deterministic item set.
fn frame(key: u64) -> Vec<u8> {
    let mut fleet: FleetArena = FleetArena::with_schedule(schedule(), SEED);
    fleet.touch(key);
    for item in 0..60u64 {
        fleet.insert_u64(key, key.wrapping_mul(1_000) + item);
    }
    fleet.checkpoint()
}

fn record(source: u64, epoch: u64, payload: Vec<u8>) -> JournalRecord {
    JournalRecord {
        source,
        epoch,
        payload,
    }
}

/// Start a daemon on `dir`, wait out recovery, drain, and return the
/// report (estimates + final checkpoint + replay counters).
fn recover(dir: &std::path::Path) -> DaemonReport {
    let daemon = Daemon::start(dcfg(dir)).unwrap();
    while daemon.is_recovering() {
        std::thread::sleep(Duration::from_millis(2));
    }
    daemon.drain();
    daemon.join().unwrap()
}

/// The ring a clean collector holds after absorbing exactly `records`.
fn expected_ring(records: &[(u64, u64, &[u8])]) -> WindowedFleet {
    let mut ring: WindowedFleet = WindowedFleet::with_schedule(schedule(), SEED, WINDOW).unwrap();
    for &(source, epoch, payload) in records {
        let fleet: FleetArena = Checkpoint::restore(payload).unwrap();
        if epoch > ring.current_epoch() {
            ring.advance_to(epoch).unwrap();
        }
        ring.absorb_epoch_from(source, epoch, &fleet).unwrap();
    }
    ring
}

#[test]
fn truncated_tail_is_discarded_and_the_prefix_replays() {
    let dir = scratch_dir("torn");
    let (f1, f2, f3) = (frame(1), frame(2), frame(3));
    {
        let mut w = JournalWriter::create(&dir, &jcfg(), 0, 1, false).unwrap();
        w.append(&record(1, 0, f1.clone())).unwrap();
        w.append(&record(2, 0, f2.clone())).unwrap();
        // Half a record: the torn tail a crash mid-append leaves.
        let torn = journal::encode_record(&record(1, 1, f3.clone()));
        w.append_bytes(&torn[..torn.len() / 2]).unwrap();
    }
    let report = recover(&dir);
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(report.replayed_records, 2);
    assert_eq!(report.replay_skipped, 0, "a torn tail is not a record");
    let expected = expected_ring(&[(1, 0, &f1), (2, 0, &f2)]);
    assert_eq!(report.estimates, expected.estimates());
    assert_eq!(report.final_checkpoint, expected.checkpoint());
}

#[test]
fn bit_flipped_record_stops_the_scan_with_the_prefix_intact() {
    let dir = scratch_dir("flip");
    let (f1, f2, f3) = (frame(4), frame(5), frame(6));
    {
        let mut w = JournalWriter::create(&dir, &jcfg(), 0, 1, false).unwrap();
        w.append(&record(1, 0, f1.clone())).unwrap();
        // Flip one byte inside the second record's encoding: its outer
        // checksum fails, and nothing after it can be trusted.
        let mut bytes = journal::encode_record(&record(1, 0, f2.clone()));
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x20;
        w.append_bytes(&bytes).unwrap();
        w.append(&record(1, 0, f3.clone())).unwrap();
    }
    let report = recover(&dir);
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(report.replayed_records, 1, "only the clean prefix replays");
    let expected = expected_ring(&[(1, 0, &f1)]);
    assert_eq!(report.estimates, expected.estimates());
    assert_eq!(report.final_checkpoint, expected.checkpoint());
}

#[test]
fn resealed_record_is_skipped_and_later_records_still_replay() {
    let dir = scratch_dir("reseal");
    let (f1, f3) = (frame(7), frame(9));
    // The reseal attack: corrupt the sketch payload, then wrap it in a
    // *valid* record envelope (outer checksum computed over the corrupt
    // bytes). The record layer cannot catch it — the payload's own
    // frame checksum must.
    let mut evil = frame(8);
    let mid = evil.len() / 2;
    evil[mid] ^= 0x11;
    {
        let mut w = JournalWriter::create(&dir, &jcfg(), 0, 1, false).unwrap();
        w.append(&record(1, 0, f1.clone())).unwrap();
        w.append(&record(2, 0, evil)).unwrap();
        w.append(&record(3, 0, f3.clone())).unwrap();
    }
    let report = recover(&dir);
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(report.replayed_records, 2, "the records around it replay");
    assert_eq!(report.replay_skipped, 1, "the resealed record is skipped");
    let expected = expected_ring(&[(1, 0, &f1), (3, 0, &f3)]);
    assert_eq!(report.estimates, expected.estimates());
    assert_eq!(report.final_checkpoint, expected.checkpoint());
}

#[test]
fn config_mismatched_journal_refuses_startup_with_a_typed_error() {
    let dir = scratch_dir("jcfg");
    let foreign = JournalConfig {
        seed: SEED ^ 1,
        ..jcfg()
    };
    {
        let mut w = JournalWriter::create(&dir, &foreign, 0, 1, false).unwrap();
        w.append(&record(1, 0, frame(1))).unwrap();
        // A second segment so the mismatch is not excused as a torn
        // final header.
        JournalWriter::create(&dir, &foreign, 1, 1, false).unwrap();
    }
    let err = Daemon::start(dcfg(&dir))
        .err()
        .expect("startup must refuse a mismatched journal");
    let _ = std::fs::remove_dir_all(&dir);
    assert!(
        err.contains("config mismatch"),
        "the refusal must name the mismatch: {err}"
    );
}

#[test]
fn config_mismatched_snapshot_refuses_startup_with_a_typed_error() {
    let dir = scratch_dir("scfg");
    let foreign: WindowedFleet =
        WindowedFleet::with_schedule(schedule(), SEED ^ 1, WINDOW).unwrap();
    journal::write_atomic(&dir.join(journal::SNAPSHOT_FILE), &foreign.checkpoint()).unwrap();
    let err = Daemon::start(dcfg(&dir))
        .err()
        .expect("startup must refuse a mismatched snapshot");
    let _ = std::fs::remove_dir_all(&dir);
    assert!(
        err.contains("config mismatch"),
        "the refusal must name the mismatch: {err}"
    );
}

#[test]
fn record_older_than_the_snapshot_is_skipped_untouched() {
    let dir = scratch_dir("stale");
    // Snapshot holds a ring already advanced to epoch 10 (window 3, so
    // live epochs are 8..=10); a journal record for epoch 0 is ancient
    // history the ring must refuse to resurrect.
    let f1 = frame(11);
    let snapshot = expected_ring(&[(1, 10, &f1)]);
    journal::write_atomic(&dir.join(journal::SNAPSHOT_FILE), &snapshot.checkpoint()).unwrap();
    {
        let mut w = JournalWriter::create(&dir, &jcfg(), 0, 1, false).unwrap();
        w.append(&record(2, 0, frame(12))).unwrap();
    }
    let report = recover(&dir);
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(report.replayed_records, 0);
    assert_eq!(
        report.replay_skipped, 1,
        "the stale record expires as a skip"
    );
    assert_eq!(report.estimates, snapshot.estimates());
    assert_eq!(report.final_checkpoint, snapshot.checkpoint());
}
