//! Kill-and-recover: the collector child process is aborted (the moral
//! equivalent of `kill -9`) at seeded points of the durability pipeline
//! — mid-absorb, mid-journal-append, mid-snapshot — restarted on the
//! same data directory, and the agents reconnect and finish. The final
//! estimates and quantile summaries must be **bit-identical** to an
//! uncrashed reference run: that is the whole claim of the write-ahead
//! journal.
//!
//! The child is `src/bin/crashd.rs`, configured via `CRASHD_*` env vars
//! and located through `CARGO_BIN_EXE_crashd`. Agents run in this
//! process and follow the collector across its restart by reading the
//! current ingest address from a shared cell.

use std::io::{BufRead, BufReader, Lines};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdout, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use sbitmap_core::RateSchedule;
use sbitmap_daemon::{query_once, run_agent_rounds, AgentConfig, Backoff};
use sbitmap_stream::net::{ConfigEcho, Message, QueryReply, QueryRequest};
use sbitmap_stream::{DeltaFrameSource, WindowedPipelineConfig};

fn pcfg() -> WindowedPipelineConfig {
    WindowedPipelineConfig {
        links: 12,
        shards: 2,
        n_max: 50_000,
        m_bits: 2_000,
        window: 3,
        epochs: 5,
        rounds: 2,
        seed: 7,
    }
}

fn echo() -> ConfigEcho {
    let p = pcfg();
    let schedule = RateSchedule::from_memory(p.n_max, p.m_bits).unwrap();
    ConfigEcho {
        n_max: p.n_max,
        m: p.m_bits as u64,
        sampling_bits: schedule.split().sampling_bits(),
        seed: p.seed,
        window: p.window as u64,
        term: 0,
    }
}

/// A running `crashd` child plus its parsed listener addresses and the
/// still-open stdout reader (the drain report arrives on it later).
struct Collector {
    child: Child,
    ingest: SocketAddr,
    query: SocketAddr,
    lines: Lines<BufReader<ChildStdout>>,
}

fn spawn_crashd(dir: &Path, crash: Option<(&str, u64)>) -> Collector {
    let p = pcfg();
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_crashd"));
    cmd.env("CRASHD_DATA_DIR", dir)
        .env("CRASHD_N_MAX", p.n_max.to_string())
        .env("CRASHD_M_BITS", p.m_bits.to_string())
        .env("CRASHD_SEED", p.seed.to_string())
        .env("CRASHD_WINDOW", p.window.to_string())
        .env("CRASHD_SNAPSHOT_EVERY", "3")
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    if let Some((site, after)) = crash {
        cmd.env("CRASHD_CRASH_SITE", site)
            .env("CRASHD_CRASH_AFTER", after.to_string());
    }
    let mut child = cmd.spawn().expect("spawn crashd");
    let mut lines = BufReader::new(child.stdout.take().unwrap()).lines();
    let mut ingest = None;
    let mut query = None;
    for line in lines.by_ref() {
        let line = line.unwrap();
        if let Some(addr) = line.strip_prefix("INGEST ") {
            ingest = Some(addr.parse().unwrap());
        } else if let Some(addr) = line.strip_prefix("QUERY ") {
            query = Some(addr.parse().unwrap());
        } else if line == "READY" {
            break;
        }
    }
    Collector {
        child,
        ingest: ingest.expect("crashd printed INGEST"),
        query: query.expect("crashd printed QUERY"),
        lines,
    }
}

/// What one scenario run (crashed or clean) converged to.
struct Outcome {
    topk: QueryReply,
    summary: QueryReply,
    restarts: u32,
    replayed: u64,
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sbitmapd-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Run the full pipeline against a `crashd` child, restarting it (once)
/// if the configured crash point kills it, and return the final queried
/// state.
fn run_scenario(dir: &Path, crash: Option<(&str, u64)>) -> Outcome {
    let p = pcfg();
    let echo = echo();
    let mut col = spawn_crashd(dir, crash);
    let addr = Arc::new(Mutex::new(col.ingest));

    let mut workers = Vec::with_capacity(p.shards);
    for shard in 0..p.shards {
        let backlog = DeltaFrameSource::new(&p, shard).unwrap().collect_epochs();
        let addr = addr.clone();
        let acfg = AgentConfig {
            // The collector will vanish mid-session and take a few
            // hundred milliseconds to come back: plenty of patient,
            // fast-paced attempts.
            max_attempts: 600,
            ack_timeout: Duration::from_millis(300),
            backoff: Backoff {
                base: Duration::from_millis(2),
                cap: Duration::from_millis(40),
                seed: shard as u64 + 1,
            },
            ..AgentConfig::new(shard as u64 + 1, echo)
        };
        workers.push(std::thread::spawn(move || {
            run_agent_rounds(&acfg, backlog, |_attempt| {
                let target = *addr.lock().unwrap();
                let stream = TcpStream::connect(target)?;
                stream.set_nodelay(true)?;
                stream.set_read_timeout(Some(Duration::from_millis(10)))?;
                Ok(stream)
            })
        }));
    }

    // Babysit the child while the agents work: when the crash point
    // fires, restart on the same data directory (no crash point) and
    // repoint the agents.
    let mut restarts = 0u32;
    while !workers.iter().all(|w| w.is_finished()) {
        if let Some(status) = col.child.try_wait().unwrap() {
            assert!(
                !status.success(),
                "collector exited cleanly while agents were mid-flight"
            );
            restarts += 1;
            assert!(restarts <= 1, "the crash point must fire exactly once");
            col = spawn_crashd(dir, None);
            *addr.lock().unwrap() = col.ingest;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    for w in workers {
        w.join().unwrap().expect("agent finished all frames");
    }

    let ask = |req: &QueryRequest| -> QueryReply {
        let stream = TcpStream::connect(col.query).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_millis(10)))
            .unwrap();
        match query_once(stream, req, Duration::from_secs(5)).unwrap() {
            Message::Reply(r) => r,
            other => panic!("expected Reply, got {other:?}"),
        }
    };
    let topk = ask(&QueryRequest::TopK(64));
    let summary = ask(&QueryRequest::Summary);
    assert_eq!(ask(&QueryRequest::Drain), QueryReply::Draining);
    let status = col.child.wait().unwrap();
    assert!(status.success(), "drained collector must exit cleanly");
    let mut replayed = 0;
    for line in col.lines.by_ref() {
        let line = line.unwrap();
        if let Some(rest) = line.strip_prefix("REPORT ") {
            for kv in rest.split_whitespace() {
                if let Some(v) = kv.strip_prefix("replayed=") {
                    replayed = v.parse().unwrap();
                }
            }
        }
    }
    Outcome {
        topk,
        summary,
        restarts,
        replayed,
    }
}

#[test]
fn killed_collector_recovers_bit_identical_state() {
    // Uncrashed reference, journaling on: what every crashed run must
    // converge back to, bit for bit.
    let ref_dir = scratch_dir("ref");
    let reference = run_scenario(&ref_dir, None);
    let _ = std::fs::remove_dir_all(&ref_dir);
    assert_eq!(reference.restarts, 0);
    match &reference.topk {
        QueryReply::TopK(rows) => assert_eq!(rows.len(), pcfg().links),
        other => panic!("expected TopK, got {other:?}"),
    }

    // Every crash site of the durability pipeline, each mid-stream:
    // 2 shards x 5 epochs x 2 delta rounds = 20 absorbed frames with a
    // snapshot every 3. Frame-counted sites fire at 8 — one past the
    // frame-6 snapshot, so the live segment holds a journaled frame the
    // recovery must actually replay; snapshot-counted sites fire on the
    // second attempt.
    for (site, after) in [
        ("absorb-before-journal", 8),
        ("mid-journal-append", 8),
        ("mid-snapshot-write", 2),
        ("after-snapshot-rename", 2),
    ] {
        let dir = scratch_dir(site);
        let crashed = run_scenario(&dir, Some((site, after)));
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(crashed.restarts, 1, "{site}: the crash point must fire");
        assert!(
            crashed.replayed > 0,
            "{site}: recovery must replay journaled frames"
        );
        assert_eq!(
            crashed.topk, reference.topk,
            "{site}: per-link estimates must be bit-identical to the uncrashed run"
        );
        assert_eq!(
            crashed.summary, reference.summary,
            "{site}: quantile summary must be bit-identical to the uncrashed run"
        );
    }
}
