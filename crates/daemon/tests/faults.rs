//! The headline robustness property: under every seeded [`FaultPlan`] —
//! cut connections, stalls, corrupted bytes, duplicated and reordered
//! frames — the agents reconnect, resume from their last ack, and the
//! drained collector is **bit-identical** to the fault-free run: same
//! per-link window estimates (f64-exact), same ring checkpoint bytes.
//!
//! That in turn is locked against the in-process
//! [`run_windowed_pipeline`], so the networked path reproduces the
//! paper's §7.2 collector exactly, not approximately.

use std::time::Duration;

use sbitmap_daemon::{run_loopback, DaemonConfig, LoopbackOutcome};
use sbitmap_stream::{quantile_summary, run_windowed_pipeline, FaultPlan, WindowedPipelineConfig};

fn pcfg() -> WindowedPipelineConfig {
    WindowedPipelineConfig {
        links: 12,
        shards: 3,
        n_max: 50_000,
        m_bits: 2_000,
        window: 3,
        epochs: 6,
        rounds: 2,
        seed: 7,
    }
}

fn dcfg() -> DaemonConfig {
    DaemonConfig {
        read_deadline: Duration::from_millis(10),
        write_deadline: Duration::from_millis(500),
        idle_limit: Duration::from_secs(3),
        credits: 3,
        queue_frames: 8,
        ..DaemonConfig::default()
    }
}

fn clean_run(pcfg: &WindowedPipelineConfig) -> LoopbackOutcome {
    run_loopback(pcfg, dcfg(), &[]).expect("clean loopback run")
}

#[test]
fn clean_loopback_reproduces_the_inprocess_pipeline_exactly() {
    let pcfg = pcfg();
    let out = clean_run(&pcfg);
    let reference = run_windowed_pipeline(&pcfg).unwrap();

    let expected: Vec<(u64, f64)> = reference
        .links
        .iter()
        .map(|r| (r.link as u64, r.estimate))
        .collect();
    assert_eq!(out.report.estimates, expected, "per-link estimates");

    let mut sample: Vec<f64> = out.report.estimates.iter().map(|&(_, e)| e).collect();
    assert_eq!(
        quantile_summary(&mut sample),
        reference.estimate_quantiles,
        "quantile summary"
    );
    // v3 shipping: one delta frame per (shard, epoch, round), each
    // acked exactly once. A shard racing ahead may age another shard's
    // oldest epochs out of the window (`Expired`), which cannot affect
    // the final-window estimates asserted above.
    assert_eq!(
        (out.report.frames_absorbed + out.report.expired) as usize,
        pcfg.shards * pcfg.epochs * pcfg.rounds
    );
    assert_eq!(out.report.duplicates, 0);
    assert_eq!(out.report.bad_frames, 0);
    assert_eq!(out.report.missing_baselines, 0);
    assert_eq!(out.report.desyncs, 0);
    let agent_bytes: u64 = out.agents.iter().map(|a| a.bytes_on_wire).sum();
    assert_eq!(
        out.report.bytes_on_wire, agent_bytes,
        "daemon counts the bytes agents sent"
    );
    for a in &out.agents {
        assert_eq!(a.connections, 1, "clean agents connect once");
        assert_eq!(a.dropped, 0);
        assert_eq!(
            a.frames_sent as usize,
            (pcfg.epochs * pcfg.rounds),
            "one send per (epoch, round) on a clean session"
        );
        assert_eq!(a.baseline_resyncs, 0);
    }
}

#[test]
fn every_seeded_fault_plan_converges_to_the_fault_free_state() {
    let pcfg = pcfg();
    let clean = clean_run(&pcfg);

    // Evidence the sweep actually exercised the failure paths (any one
    // seed may roll a mild plan; across the sweep every family fires).
    let mut reconnects = 0u64;
    let mut duplicates = 0u64;
    let mut bad_frames = 0u64;
    let mut desyncs = 0u64;

    for seed in 0..12u64 {
        let plans: Vec<FaultPlan> = (0..pcfg.shards)
            .map(|shard| FaultPlan::seeded(seed * 131 + shard as u64, 6))
            .collect();
        assert!(
            plans.iter().any(|p| !p.is_clean()),
            "seed {seed}: dull sweep"
        );
        let out =
            run_loopback(&pcfg, dcfg(), &plans).unwrap_or_else(|e| panic!("seed {seed}: {e}"));

        // The property: identical state, not merely close.
        assert_eq!(
            out.report.estimates, clean.report.estimates,
            "seed {seed}: estimates diverged from the fault-free run"
        );
        assert_eq!(
            out.report.final_checkpoint, clean.report.final_checkpoint,
            "seed {seed}: drained ring checkpoint not byte-identical"
        );

        for a in &out.agents {
            reconnects += a.connections.saturating_sub(1);
            duplicates += a.duplicates;
            assert_eq!(a.dropped, 0, "seed {seed}: unbounded buffers must not shed");
        }
        duplicates += out.report.duplicates;
        bad_frames += out.report.bad_frames;
        desyncs += out.report.desyncs;
    }

    assert!(reconnects > 0, "no plan forced a reconnect");
    assert!(duplicates > 0, "no plan exercised the at-least-once guard");
    assert!(
        bad_frames + desyncs > 0,
        "no plan exercised corruption handling"
    );
}

#[test]
fn reordered_chain_heads_force_baseline_resyncs_and_still_converge() {
    let pcfg = pcfg();
    let clean = clean_run(&pcfg);
    // With rounds = 2, swapping every adjacent pair sends each epoch's
    // round 1 ahead of its round-0 baseline: the collector must answer
    // MissingBaseline, and the agent must replay the retained baseline
    // and the orphaned round — the forced-resync path, deterministic.
    let plans = vec![FaultPlan {
        faulty_connections: 1,
        swap_every: Some(2),
        ..FaultPlan::none()
    }];
    let out = run_loopback(&pcfg, dcfg(), &plans).unwrap();
    assert!(
        out.agents[0].baseline_resyncs > 0,
        "the reorder must trip at least one resync"
    );
    assert!(out.report.missing_baselines > 0);
    assert_eq!(out.report.estimates, clean.report.estimates);
    assert_eq!(out.report.final_checkpoint, clean.report.final_checkpoint);
}

#[test]
fn cut_connection_resumes_from_last_ack() {
    let pcfg = pcfg();
    let clean = clean_run(&pcfg);
    // Cut shard 0's first connection after ~1.5 frames; later attempts
    // run clean, so the agent must reconnect and retransmit unacked
    // epochs only (acked ones come back as guard duplicates if resent).
    let plans = vec![FaultPlan {
        faulty_connections: 1,
        cut_after: Some(2_000),
        ..FaultPlan::none()
    }];
    let out = run_loopback(&pcfg, dcfg(), &plans).unwrap();
    assert!(
        out.agents[0].connections >= 2,
        "the cut must force at least one reconnect"
    );
    assert_eq!(out.report.estimates, clean.report.estimates);
    assert_eq!(out.report.final_checkpoint, clean.report.final_checkpoint);
}

#[test]
fn stalled_writes_survive_the_read_deadline() {
    let pcfg = pcfg();
    let clean = clean_run(&pcfg);
    // Stall one write well past the daemon's 10 ms read deadline: the
    // resumable frame reader must carry the partial frame across
    // timeout ticks instead of desyncing.
    let plans = vec![FaultPlan {
        faulty_connections: 1,
        stall: Some((600, Duration::from_millis(60))),
        ..FaultPlan::none()
    }];
    let out = run_loopback(&pcfg, dcfg(), &plans).unwrap();
    assert_eq!(out.report.desyncs, 0, "a stall is not a desync");
    assert_eq!(out.report.estimates, clean.report.estimates);
    assert_eq!(out.report.final_checkpoint, clean.report.final_checkpoint);
}
