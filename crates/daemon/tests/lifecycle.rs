//! Daemon lifecycle edges: handshake rejection, mid-frame death,
//! backpressure, duplicate delivery, graceful drain, and the query port.

use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use sbitmap_core::codec::Checkpoint;
use sbitmap_core::{FleetArena, RateSchedule, WindowedFleet};
use sbitmap_daemon::{query_once, run_agent, run_loopback, AgentConfig, Daemon, DaemonConfig};
use sbitmap_stream::net::{
    encode, AckOutcome, ConfigEcho, ErrorCode, FrameReader, Message, QueryReply, QueryRequest,
    ReadEvent, Role, PROTO_VERSION,
};
use sbitmap_stream::{
    quantile_summary, run_windowed_pipeline, DeltaFrameSource, ShardFrameSource,
    WindowedPipelineConfig,
};

fn pcfg() -> WindowedPipelineConfig {
    WindowedPipelineConfig {
        links: 12,
        shards: 2,
        n_max: 50_000,
        m_bits: 2_000,
        window: 3,
        epochs: 5,
        rounds: 2,
        seed: 7,
    }
}

fn dcfg() -> DaemonConfig {
    DaemonConfig {
        n_max: 50_000,
        m_bits: 2_000,
        seed: 7,
        window: 3,
        read_deadline: Duration::from_millis(10),
        write_deadline: Duration::from_millis(500),
        idle_limit: Duration::from_secs(3),
        ..DaemonConfig::default()
    }
}

/// A raw protocol client for poking the daemon directly.
struct Client {
    reader: FrameReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_millis(10)))
            .unwrap();
        Self {
            reader: FrameReader::new(stream),
        }
    }

    fn send(&mut self, msg: &Message) {
        use std::io::Write;
        self.reader.inner_mut().write_all(&encode(msg)).unwrap();
    }

    fn send_raw(&mut self, bytes: &[u8]) {
        use std::io::Write;
        self.reader.inner_mut().write_all(bytes).unwrap();
    }

    /// Next decoded message, waiting up to 2 s.
    fn recv(&mut self) -> Message {
        let start = Instant::now();
        loop {
            match self.reader.read_event() {
                Ok(ReadEvent::Message(m)) => return m,
                Ok(ReadEvent::TimedOut) => {
                    assert!(start.elapsed() < Duration::from_secs(2), "no reply in 2s");
                }
                other => panic!("unexpected read event: {other:?}"),
            }
        }
    }

    fn hello(&mut self, agent: u64, config: ConfigEcho) -> Message {
        self.send(&Message::Hello {
            proto: PROTO_VERSION,
            role: Role::Ingest,
            agent,
            config,
        });
        self.recv()
    }
}

/// A one-epoch tag-9 fleet frame matching `dcfg()`'s sketch shape.
fn test_frame(keys: &[u64]) -> Vec<u8> {
    let cfg = dcfg();
    let schedule = Arc::new(RateSchedule::from_memory(cfg.n_max, cfg.m_bits).unwrap());
    let mut fleet: FleetArena = FleetArena::with_schedule(schedule, cfg.seed);
    for &k in keys {
        fleet.touch(k);
        for item in 0..50u64 {
            fleet.insert_u64(k, k.wrapping_mul(1000) + item);
        }
    }
    fleet.checkpoint()
}

#[test]
fn handshake_rejects_wrong_version_with_typed_error() {
    let daemon = Daemon::start(dcfg()).unwrap();
    let echo = daemon.config_echo();
    let mut c = Client::connect(daemon.ingest_addr());
    c.send(&Message::Hello {
        proto: 0,
        role: Role::Ingest,
        agent: 1,
        config: echo,
    });
    match c.recv() {
        Message::Error { code, context, .. } => {
            assert_eq!(code, ErrorCode::VersionMismatch);
            assert_eq!(context, 0, "context carries the peer's version");
        }
        other => panic!("expected VersionMismatch error, got {other:?}"),
    }
    // A peer from the future is fine: the session settles on the
    // highest version the daemon speaks.
    let mut future = Client::connect(daemon.ingest_addr());
    future.send(&Message::Hello {
        proto: 99,
        role: Role::Ingest,
        agent: 2,
        config: echo,
    });
    match future.recv() {
        Message::Welcome { proto, .. } => assert_eq!(proto, PROTO_VERSION),
        other => panic!("expected negotiated Welcome, got {other:?}"),
    }
    drop(future);
    // The daemon survives the rejection: a correct handshake succeeds.
    let mut ok = Client::connect(daemon.ingest_addr());
    match ok.hello(1, echo) {
        Message::Welcome {
            proto,
            credits,
            config,
        } => {
            assert_eq!(proto, PROTO_VERSION);
            assert!(credits >= 1);
            // The welcome's term is the daemon's, not ours — compare
            // everything else.
            assert!(config.agrees_with(&echo));
        }
        other => panic!("expected Welcome, got {other:?}"),
    }
    drop((c, ok));
    daemon.drain();
    let report = daemon.join().unwrap();
    assert_eq!(report.handshake_rejects, 1);
}

#[test]
fn handshake_rejects_config_mismatch() {
    let daemon = Daemon::start(dcfg()).unwrap();
    let mut wrong = daemon.config_echo();
    wrong.seed ^= 1;
    let mut c = Client::connect(daemon.ingest_addr());
    match c.hello(1, wrong) {
        Message::Error { code, .. } => assert_eq!(code, ErrorCode::ConfigMismatch),
        other => panic!("expected ConfigMismatch error, got {other:?}"),
    }
    drop(c);
    daemon.drain();
    assert_eq!(daemon.join().unwrap().handshake_rejects, 1);
}

#[test]
fn v2_only_collector_negotiates_down_and_still_converges() {
    // A daemon pinned to protocol 1 must answer `Welcome { proto: 1 }`,
    // and delta-capable agents must fall back to shipping each epoch's
    // full checkpoint — landing on the exact same collector state.
    let pcfg = pcfg();
    let reference = run_windowed_pipeline(&pcfg).unwrap();
    let old = DaemonConfig {
        max_proto: 1,
        ..dcfg()
    };
    let out = run_loopback(&pcfg, old, &[]).unwrap();
    let expected: Vec<(u64, f64)> = reference
        .links
        .iter()
        .map(|r| (r.link as u64, r.estimate))
        .collect();
    assert_eq!(out.report.estimates, expected, "per-link estimates");
    for a in &out.agents {
        assert_eq!(
            a.frames_sent as usize, pcfg.epochs,
            "fallback ships one full frame per epoch, not per round"
        );
        assert_eq!(a.baseline_resyncs, 0);
    }
    assert_eq!(
        (out.report.frames_absorbed + out.report.expired) as usize,
        pcfg.shards * pcfg.epochs
    );
    assert_eq!(out.report.missing_baselines, 0);
}

#[test]
fn delta_without_baseline_draws_typed_error_and_resync_succeeds() {
    // The daemon-side resync contract, poked raw: a round-1 delta whose
    // epoch has no absorbed baseline is answered with a typed
    // `MissingBaseline` error (the connection survives), and replaying
    // the chain from round 0 then lands every frame.
    let one_shard = WindowedPipelineConfig {
        shards: 1,
        epochs: 1,
        ..pcfg()
    };
    let backlog = DeltaFrameSource::new(&one_shard, 0)
        .unwrap()
        .collect_epochs();
    let deltas = &backlog[0].deltas;
    assert!(deltas.len() >= 2, "need a baseline and a follow-up round");

    let daemon = Daemon::start(dcfg()).unwrap();
    let echo = daemon.config_echo();
    let mut c = Client::connect(daemon.ingest_addr());
    match c.hello(1, echo) {
        Message::Welcome { proto, .. } => assert_eq!(proto, PROTO_VERSION),
        other => panic!("expected Welcome, got {other:?}"),
    }
    c.send(&Message::BatchDelta {
        epoch: 0,
        round: 1,
        agent: 1,
        frame: deltas[1].clone(),
    });
    match c.recv() {
        Message::Error { code, context, .. } => {
            assert_eq!(code, ErrorCode::MissingBaseline);
            assert_eq!(context, 0, "context names the epoch to resync");
        }
        other => panic!("expected MissingBaseline error, got {other:?}"),
    }
    // The session survived; replay from the baseline.
    for (round, frame) in deltas.iter().enumerate() {
        c.send(&Message::BatchDelta {
            epoch: 0,
            round: round as u32,
            agent: 1,
            frame: frame.clone(),
        });
        match c.recv() {
            Message::AckDelta {
                epoch,
                round: r,
                outcome,
                ..
            } => {
                assert_eq!((epoch, r), (0, round as u32));
                assert_eq!(outcome, AckOutcome::Absorbed);
            }
            other => panic!("round {round}: expected AckDelta, got {other:?}"),
        }
    }
    drop(c);
    daemon.drain();
    let report = daemon.join().unwrap();
    assert_eq!(report.missing_baselines, 1);
    assert_eq!(report.frames_absorbed as usize, deltas.len());
    assert_eq!(report.bad_frames, 0, "a missing baseline is not corruption");
}

#[test]
fn mid_frame_disconnect_leaves_the_daemon_healthy() {
    let daemon = Daemon::start(dcfg()).unwrap();
    let echo = daemon.config_echo();
    {
        let mut c = Client::connect(daemon.ingest_addr());
        assert!(matches!(c.hello(1, echo), Message::Welcome { .. }));
        let batch = encode(&Message::Batch {
            epoch: 0,
            agent: 1,
            frame: test_frame(&[3]),
        });
        // Half a frame, then vanish.
        c.send_raw(&batch[..batch.len() / 2]);
    }
    // A well-behaved session on a fresh connection still works.
    let mut c = Client::connect(daemon.ingest_addr());
    assert!(matches!(c.hello(2, echo), Message::Welcome { .. }));
    c.send(&Message::Batch {
        epoch: 0,
        agent: 2,
        frame: test_frame(&[3]),
    });
    match c.recv() {
        Message::Ack { epoch, outcome, .. } => {
            assert_eq!(epoch, 0);
            assert_eq!(outcome, AckOutcome::Absorbed);
        }
        other => panic!("expected Ack, got {other:?}"),
    }
    drop(c);
    daemon.drain();
    let report = daemon.join().unwrap();
    assert_eq!(report.frames_absorbed, 1);
    assert_eq!(report.estimates.len(), 1, "the half frame left no state");
}

#[test]
fn corrupt_frame_draws_error_frame_and_connection_survives() {
    let daemon = Daemon::start(dcfg()).unwrap();
    let mut c = Client::connect(daemon.ingest_addr());
    assert!(matches!(
        c.hello(1, daemon.config_echo()),
        Message::Welcome { .. }
    ));
    let mut batch = encode(&Message::Batch {
        epoch: 0,
        agent: 1,
        frame: test_frame(&[5]),
    });
    // Flip one payload byte: checksum fails, frame boundary survives.
    let mid = batch.len() / 2;
    batch[mid] ^= 0x40;
    c.send_raw(&batch);
    match c.recv() {
        Message::Error { code, .. } => assert_eq!(code, ErrorCode::BadFrame),
        other => panic!("expected BadFrame error, got {other:?}"),
    }
    // Same connection, clean retransmit: absorbed.
    c.send(&Message::Batch {
        epoch: 0,
        agent: 1,
        frame: test_frame(&[5]),
    });
    match c.recv() {
        Message::Ack { outcome, .. } => assert_eq!(outcome, AckOutcome::Absorbed),
        other => panic!("expected Ack, got {other:?}"),
    }
    drop(c);
    daemon.drain();
    let report = daemon.join().unwrap();
    assert_eq!(report.bad_frames, 1);
    assert_eq!(report.desyncs, 0, "a payload flip must not desync");
    assert_eq!(report.frames_absorbed, 1);
}

#[test]
fn duplicate_frames_are_acked_duplicate_and_change_nothing() {
    let daemon = Daemon::start(dcfg()).unwrap();
    let echo = daemon.config_echo();
    let frame = test_frame(&[1, 2]);
    let ack = |c: &mut Client| match c.recv() {
        Message::Ack { outcome, .. } => outcome,
        other => panic!("expected Ack, got {other:?}"),
    };
    let batch = |agent| Message::Batch {
        epoch: 0,
        agent,
        frame: frame.clone(),
    };

    // Same session, same agent: first absorbed, replay skipped.
    let mut a = Client::connect(daemon.ingest_addr());
    assert!(matches!(a.hello(1, echo), Message::Welcome { .. }));
    a.send(&batch(1));
    assert_eq!(ack(&mut a), AckOutcome::Absorbed);
    a.send(&batch(1));
    assert_eq!(ack(&mut a), AckOutcome::Duplicate);
    drop(a);

    // Reconnect as the same agent: the guard keys on identity, not
    // connection, so the replay is still a duplicate.
    let mut b = Client::connect(daemon.ingest_addr());
    assert!(matches!(b.hello(1, echo), Message::Welcome { .. }));
    b.send(&batch(1));
    assert_eq!(ack(&mut b), AckOutcome::Duplicate);
    drop(b);

    // A different agent is a different source: absorbed (the union is
    // idempotent, so state still cannot change).
    let mut c = Client::connect(daemon.ingest_addr());
    assert!(matches!(c.hello(2, echo), Message::Welcome { .. }));
    c.send(&batch(2));
    assert_eq!(ack(&mut c), AckOutcome::Absorbed);
    drop(c);

    daemon.drain();
    let report = daemon.join().unwrap();
    assert_eq!(report.frames_absorbed, 2);
    assert_eq!(report.duplicates, 2);

    // The drained state equals one clean absorb of the frame.
    let cfg = dcfg();
    let schedule = Arc::new(RateSchedule::from_memory(cfg.n_max, cfg.m_bits).unwrap());
    let mut expected: WindowedFleet =
        WindowedFleet::with_schedule(schedule, cfg.seed, cfg.window).unwrap();
    let fleet: FleetArena = Checkpoint::restore(&frame).unwrap();
    assert!(expected.absorb_epoch(0, &fleet).unwrap());
    assert_eq!(report.estimates, expected.estimates());
    assert_eq!(report.final_checkpoint, expected.checkpoint());
}

#[test]
fn slow_absorber_engages_backpressure_without_losing_frames() {
    let daemon = Daemon::start(DaemonConfig {
        queue_frames: 1,
        credits: 8,
        absorb_stall: Duration::from_millis(25),
        ..dcfg()
    })
    .unwrap();
    let mut c = Client::connect(daemon.ingest_addr());
    assert!(matches!(
        c.hello(1, daemon.config_echo()),
        Message::Welcome { .. }
    ));
    // Fire a burst far faster than 25 ms/frame; the bounded queue must
    // fill and the handler must block (stop reading) rather than drop.
    for epoch in 0..6u64 {
        c.send(&Message::Batch {
            epoch,
            agent: 1,
            frame: test_frame(&[epoch + 10]),
        });
    }
    let mut acked = 0;
    while acked < 6 {
        if let Message::Ack { outcome, .. } = c.recv() {
            assert_eq!(outcome, AckOutcome::Absorbed);
            acked += 1;
        }
    }
    drop(c);
    daemon.drain();
    let report = daemon.join().unwrap();
    assert_eq!(report.frames_absorbed, 6);
    assert!(
        report.backpressure_events > 0,
        "a 1-deep queue under a 6-frame burst must report backpressure"
    );
}

#[test]
fn overload_sheds_typed_busy_and_retransmits_land_every_frame() {
    // Queue of 1, 30 ms per absorb, 10 ms shed deadline: a 6-frame
    // burst must draw at least one typed `Busy` answer (with a
    // retry-after hint) instead of stalling the socket, and patient
    // retransmission must still land all 6 frames exactly once.
    let daemon = Daemon::start(DaemonConfig {
        queue_frames: 1,
        credits: 8,
        absorb_stall: Duration::from_millis(30),
        busy_timeout: Duration::from_millis(10),
        ..dcfg()
    })
    .unwrap();
    let mut c = Client::connect(daemon.ingest_addr());
    assert!(matches!(
        c.hello(1, daemon.config_echo()),
        Message::Welcome { .. }
    ));
    let frames: Vec<Vec<u8>> = (0..6u64).map(|e| test_frame(&[e + 20])).collect();
    let mut absorbed = std::collections::HashSet::new();
    let mut busy_seen = 0u64;
    let deadline = Instant::now() + Duration::from_secs(10);
    while absorbed.len() < 6 {
        assert!(
            Instant::now() < deadline,
            "overloaded collector never converged; absorbed {absorbed:?}"
        );
        let outstanding: Vec<u64> = (0..6u64).filter(|e| !absorbed.contains(e)).collect();
        for &epoch in &outstanding {
            c.send(&Message::Batch {
                epoch,
                agent: 1,
                frame: frames[epoch as usize].clone(),
            });
        }
        // One reply per send: an Ack (absorbed or guard duplicate), or
        // a typed Busy for a shed frame.
        for _ in &outstanding {
            match c.recv() {
                Message::Ack { epoch, .. } => {
                    absorbed.insert(epoch);
                }
                Message::Error {
                    code: ErrorCode::Busy,
                    context,
                    ..
                } => {
                    busy_seen += 1;
                    assert!(context > 0, "the Busy answer must carry a retry-after hint");
                }
                other => panic!("expected Ack or Busy, got {other:?}"),
            }
        }
    }
    assert!(busy_seen > 0, "a 1-deep queue under this burst must shed");
    drop(c);
    daemon.drain();
    let report = daemon.join().unwrap();
    assert_eq!(report.frames_absorbed, 6, "every frame lands exactly once");
    assert!(report.busy_rejections > 0);
    assert_eq!(report.busy_rejections, busy_seen);
}

#[test]
fn agent_backs_off_on_busy_and_still_delivers_everything() {
    let daemon = Daemon::start(DaemonConfig {
        queue_frames: 1,
        credits: 8,
        absorb_stall: Duration::from_millis(20),
        busy_timeout: Duration::from_millis(5),
        ..dcfg()
    })
    .unwrap();
    let pcfg = WindowedPipelineConfig {
        shards: 1,
        ..pcfg()
    };
    let frames = ShardFrameSource::new(&pcfg, 0).unwrap().collect_frames();
    let ingest = daemon.ingest_addr();
    let acfg = AgentConfig {
        max_attempts: 200,
        ack_timeout: Duration::from_millis(300),
        ..AgentConfig::new(1, daemon.config_echo())
    };
    let report = run_agent(&acfg, frames, |_| {
        let s = TcpStream::connect(ingest)?;
        s.set_read_timeout(Some(Duration::from_millis(10)))?;
        Ok(s)
    })
    .unwrap();
    assert!(
        report.busy_backoffs > 0,
        "the overloaded collector must shed at least once"
    );
    assert_eq!(report.frames_acked as usize, pcfg.epochs);
    daemon.drain();
    let dreport = daemon.join().unwrap();
    assert!(dreport.busy_rejections > 0);
    assert_eq!(
        dreport.frames_absorbed as usize, pcfg.epochs,
        "shedding plus at-least-once retransmission loses nothing"
    );
}

#[test]
fn graceful_drain_checkpoint_matches_the_uninterrupted_pipeline() {
    let pcfg = pcfg();
    let path = std::env::temp_dir().join(format!("sbitmapd-drain-{}.ckpt", std::process::id()));
    let out = run_loopback(
        &pcfg,
        DaemonConfig {
            checkpoint_path: Some(path.clone()),
            ..dcfg()
        },
        &[],
    )
    .unwrap();

    // The ring the daemon drained equals the in-process pipeline's.
    let reference = run_windowed_pipeline(&pcfg).unwrap();
    let expected: Vec<(u64, f64)> = reference
        .links
        .iter()
        .map(|r| (r.link as u64, r.estimate))
        .collect();
    assert_eq!(out.report.estimates, expected);

    // And the on-disk checkpoint restores to the same state.
    let bytes = std::fs::read(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    assert_eq!(bytes, out.report.final_checkpoint);
    let restored: WindowedFleet = Checkpoint::restore(&bytes).unwrap();
    assert_eq!(restored.estimates(), expected);
    assert_eq!(restored.current_epoch(), pcfg.epochs as u64 - 1);
}

#[test]
fn query_port_answers_every_kind_and_drains() {
    let pcfg = WindowedPipelineConfig {
        shards: 1,
        ..pcfg()
    };
    let daemon = Daemon::start(dcfg()).unwrap();
    let echo = daemon.config_echo();
    let frames = ShardFrameSource::new(&pcfg, 0).unwrap().collect_frames();

    // Build the expected ring locally from the same frames.
    let cfg = dcfg();
    let schedule = Arc::new(RateSchedule::from_memory(cfg.n_max, cfg.m_bits).unwrap());
    let mut expected: WindowedFleet =
        WindowedFleet::with_schedule(schedule, cfg.seed, cfg.window).unwrap();
    for (epoch, frame) in &frames {
        let fleet: FleetArena = Checkpoint::restore(frame).unwrap();
        expected.advance_to(*epoch).unwrap();
        assert!(expected.absorb_epoch(*epoch, &fleet).unwrap());
    }

    let ingest = daemon.ingest_addr();
    let report = run_agent(&AgentConfig::new(1, echo), frames, |_| {
        let s = TcpStream::connect(ingest)?;
        s.set_read_timeout(Some(Duration::from_millis(10)))?;
        Ok(s)
    })
    .unwrap();
    assert_eq!(report.frames_acked as usize, pcfg.epochs);

    let qaddr = daemon.query_addr();
    let ask = move |req: &QueryRequest| -> QueryReply {
        let s = TcpStream::connect(qaddr).unwrap();
        s.set_read_timeout(Some(Duration::from_millis(10))).unwrap();
        match query_once(s, req, Duration::from_secs(2)).unwrap() {
            Message::Reply(r) => r,
            other => panic!("expected Reply, got {other:?}"),
        }
    };

    assert_eq!(
        ask(&QueryRequest::Estimate(0)),
        QueryReply::Estimate(expected.estimate(0))
    );
    assert_eq!(
        ask(&QueryRequest::Estimate(999)),
        QueryReply::Estimate(None)
    );
    assert_eq!(
        ask(&QueryRequest::Fill(3)),
        QueryReply::Fill(expected.window_fill(3).map(|f| f as u64))
    );
    let mut rows = expected.estimates();
    rows.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    rows.truncate(3);
    assert_eq!(ask(&QueryRequest::TopK(3)), QueryReply::TopK(rows));
    let mut sample: Vec<f64> = expected.estimates().iter().map(|&(_, e)| e).collect();
    assert_eq!(
        ask(&QueryRequest::Summary),
        QueryReply::Summary {
            keys: pcfg.links as u64,
            quantiles: quantile_summary(&mut sample),
        }
    );

    // Drain over the wire; join must now complete.
    assert_eq!(ask(&QueryRequest::Drain), QueryReply::Draining);
    let report = daemon.join().unwrap();
    assert_eq!(report.estimates, expected.estimates());
    assert!(report.queries >= 6);
}

#[test]
fn panicked_query_handler_does_not_poison_ingest() {
    // A query handler that panics while holding the ring lock must not
    // take the collector down with it: the lock recovers (the ring is
    // only ever mutated under short, atomic critical sections), later
    // sessions keep working, and the panic is counted, not propagated.
    let daemon = Daemon::start(DaemonConfig {
        panic_on_query: Some(77),
        ..dcfg()
    })
    .unwrap();
    let echo = daemon.config_echo();

    // Ingest one frame before the panic so post-panic queries have
    // something to estimate.
    let mut c = Client::connect(daemon.ingest_addr());
    c.hello(1, echo);
    c.send(&Message::Batch {
        epoch: 0,
        agent: 1,
        frame: test_frame(&[5, 6]),
    });
    match c.recv() {
        Message::Ack { outcome, .. } => assert_eq!(outcome, AckOutcome::Absorbed),
        other => panic!("expected Ack, got {other:?}"),
    }

    // Trip the booby-trapped key: the handler dies mid-lock and the
    // connection drops without a reply.
    let s = TcpStream::connect(daemon.query_addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_millis(10))).unwrap();
    assert!(
        query_once(s, &QueryRequest::Estimate(77), Duration::from_secs(2)).is_err(),
        "the poisoned query must not produce a reply"
    );

    // The daemon shrugged it off: ingest still absorbs...
    let mut c2 = Client::connect(daemon.ingest_addr());
    c2.hello(2, echo);
    c2.send(&Message::Batch {
        epoch: 0,
        agent: 2,
        frame: test_frame(&[8]),
    });
    match c2.recv() {
        Message::Ack { outcome, .. } => assert_eq!(outcome, AckOutcome::Absorbed),
        other => panic!("expected Ack after the panic, got {other:?}"),
    }
    // ...and queries still answer.
    let s = TcpStream::connect(daemon.query_addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_millis(10))).unwrap();
    match query_once(s, &QueryRequest::Estimate(5), Duration::from_secs(2)).unwrap() {
        Message::Reply(QueryReply::Estimate(Some(_))) => {}
        other => panic!("expected an estimate after the panic, got {other:?}"),
    }

    drop((c, c2));
    daemon.drain();
    let report = daemon.join().unwrap();
    assert_eq!(report.handler_panics, 1, "the panic is counted");
    assert_eq!(report.frames_absorbed, 2);
}
