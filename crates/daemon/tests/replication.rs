//! Replication edges beyond the kill-and-failover headline
//! (`tests/failover.rs`): the clean replicated pipeline is bit-identical
//! on both nodes, a standby fences ingest with `NotPrimary` until
//! promoted, stale-term acks are discarded by agents, a reconnect storm
//! against a freshly promoted standby still converges exactly, and the
//! replication handshake enforces the same config agreement (and term
//! fencing) as ingest.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use sbitmap_core::RateSchedule;
use sbitmap_daemon::{
    query_once, run_agent, run_agent_rounds_failover, run_loopback_replicated, AgentConfig,
    Backoff, Daemon, DaemonConfig,
};
use sbitmap_stream::net::{
    encode, AckOutcome, ConfigEcho, ErrorCode, FrameReader, Message, QueryReply, QueryRequest,
    ReadEvent, Role, PROTO_VERSION,
};
use sbitmap_stream::{
    quantile_summary, run_windowed_pipeline, DeltaFrameSource, FaultPlan, WindowedPipelineConfig,
};

fn pcfg() -> WindowedPipelineConfig {
    WindowedPipelineConfig {
        links: 12,
        shards: 2,
        n_max: 50_000,
        m_bits: 2_000,
        window: 3,
        epochs: 5,
        rounds: 2,
        seed: 7,
    }
}

fn daemon_cfg(p: &WindowedPipelineConfig) -> DaemonConfig {
    DaemonConfig {
        n_max: p.n_max,
        m_bits: p.m_bits,
        seed: p.seed,
        window: p.window,
        read_deadline: Duration::from_millis(10),
        write_deadline: Duration::from_millis(500),
        idle_limit: Duration::from_secs(3),
        ..DaemonConfig::default()
    }
}

fn echo() -> ConfigEcho {
    let p = pcfg();
    let schedule = RateSchedule::from_memory(p.n_max, p.m_bits).unwrap();
    ConfigEcho {
        n_max: p.n_max,
        m: p.m_bits as u64,
        sampling_bits: schedule.split().sampling_bits(),
        seed: p.seed,
        window: p.window as u64,
        term: 0,
    }
}

fn expected_estimates(p: &WindowedPipelineConfig) -> Vec<(u64, f64)> {
    run_windowed_pipeline(p)
        .unwrap()
        .links
        .iter()
        .map(|r| (r.link as u64, r.estimate))
        .collect()
}

// ---------------------------------------------------------------- raw client

struct Client {
    reader: FrameReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_nodelay(true).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_millis(10)))
            .unwrap();
        Self {
            reader: FrameReader::new(stream),
        }
    }

    fn hello(&mut self, role: Role, agent: u64, config: ConfigEcho) -> Message {
        self.reader
            .inner_mut()
            .write_all(&encode(&Message::Hello {
                proto: PROTO_VERSION,
                role,
                agent,
                config,
            }))
            .unwrap();
        let start = Instant::now();
        loop {
            match self.reader.read_event() {
                Ok(ReadEvent::Message(m)) => return m,
                Ok(ReadEvent::TimedOut) => {
                    assert!(start.elapsed() < Duration::from_secs(2), "no reply in 2s");
                }
                other => panic!("unexpected read event: {other:?}"),
            }
        }
    }
}

fn wait_for_peer(query: SocketAddr) {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let stream = TcpStream::connect(query).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_millis(10)))
            .unwrap();
        if let Ok(Message::Reply(QueryReply::Status { peers, .. })) =
            query_once(stream, &QueryRequest::Status, Duration::from_secs(1))
        {
            if peers >= 1 {
                return;
            }
        }
        assert!(Instant::now() < deadline, "standby never attached");
        std::thread::sleep(Duration::from_millis(5));
    }
}

// ------------------------------------------------------------------- tests

#[test]
fn replicated_loopback_is_bit_identical_on_both_nodes() {
    let p = pcfg();
    let out = run_loopback_replicated(&p, daemon_cfg(&p), &[]).unwrap();
    let expected = expected_estimates(&p);

    assert_eq!(out.primary.estimates, expected, "primary estimates");
    assert_eq!(out.standby.estimates, expected, "standby estimates");
    assert_eq!(
        out.primary.final_checkpoint, out.standby.final_checkpoint,
        "drained rings must be byte-identical"
    );
    let mut sample: Vec<f64> = out.primary.estimates.iter().map(|&(_, e)| e).collect();
    assert_eq!(
        quantile_summary(&mut sample),
        run_windowed_pipeline(&p).unwrap().estimate_quantiles,
        "quantile summary"
    );
    // Semi-synchronous shipping: every absorbed frame was replicated
    // (the standby attached before the first agent connected), acked by
    // the standby, and counted on both sides.
    assert!(out.primary.replicated_frames > 0, "nothing replicated");
    assert_eq!(out.primary.replica_drops, 0, "standby was never dropped");
    assert_eq!(
        out.primary.replicated_frames, out.standby.replicated_frames,
        "ship/absorb counts must agree"
    );
}

#[test]
fn standby_refuses_ingest_until_promoted() {
    let p = pcfg();
    // A standby whose primary does not answer: the fence is local state,
    // not something learned from the primary.
    let standby = Daemon::start(DaemonConfig {
        standby_of: Some("127.0.0.1:9".into()),
        ..daemon_cfg(&p)
    })
    .unwrap();

    let mut c = Client::connect(standby.ingest_addr());
    match c.hello(Role::Ingest, 1, echo()) {
        Message::Error { code, context, .. } => {
            assert_eq!(code, ErrorCode::NotPrimary);
            assert_eq!(context, 1, "the refusal carries the standby's term");
        }
        other => panic!("expected NotPrimary, got {other:?}"),
    }

    assert_eq!(standby.promote(), 2, "promotion bumps the term");
    let mut c = Client::connect(standby.ingest_addr());
    match c.hello(Role::Ingest, 1, echo()) {
        Message::Welcome { config, .. } => {
            assert_eq!(config.term, 2, "the welcome announces the new term");
            assert!(config.agrees_with(&echo()));
        }
        other => panic!("expected Welcome after promotion, got {other:?}"),
    }

    drop(c);
    standby.drain();
    let report = standby.join().unwrap();
    assert_eq!(report.not_primary_rejects, 1);
    assert_eq!(report.term, 2);
}

/// An in-memory scripted peer: pre-encoded server messages on the read
/// side, writes discarded; once the script is exhausted reads behave
/// like an idle socket (`WouldBlock`), so the agent's ack timeout takes
/// over.
struct Script {
    data: io::Cursor<Vec<u8>>,
}

impl Script {
    fn new(messages: &[Message]) -> Self {
        let mut data = Vec::new();
        for m in messages {
            data.extend_from_slice(&encode(m));
        }
        Self {
            data: io::Cursor::new(data),
        }
    }
}

impl Read for Script {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self.data.read(buf)? {
            0 => Err(io::Error::new(io::ErrorKind::WouldBlock, "script idle")),
            n => Ok(n),
        }
    }
}

impl Write for Script {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        Ok(buf.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[test]
fn stale_term_acks_are_discarded() {
    let welcome = |term: u64| Message::Welcome {
        credits: 4,
        proto: PROTO_VERSION,
        config: echo().with_term(term),
    };
    let cfg = AgentConfig {
        max_attempts: 4,
        ack_timeout: Duration::from_millis(30),
        backoff: Backoff {
            base: Duration::from_micros(10),
            cap: Duration::from_micros(20),
            seed: 1,
        },
        ..AgentConfig::new(1, echo())
    };
    let frames = vec![(0u64, vec![1, 2, 3])];
    let report = run_agent(&cfg, frames, |attempt| {
        Ok::<Script, io::Error>(if attempt == 0 {
            // A deposed primary: welcomes with the fleet's term (5) but
            // acks with the fenced one it was elected in (3). The agent
            // must not count that ack — the frame stays pending.
            Script::new(&[
                welcome(5),
                Message::Ack {
                    epoch: 0,
                    outcome: AckOutcome::Absorbed,
                    term: 3,
                },
            ])
        } else {
            Script::new(&[
                welcome(5),
                Message::Ack {
                    epoch: 0,
                    outcome: AckOutcome::Absorbed,
                    term: 5,
                },
            ])
        })
    })
    .unwrap();
    assert_eq!(report.stale_acks, 1, "the fenced ack must be discarded");
    assert_eq!(report.frames_acked, 1, "the retransmit lands the frame");
    assert_eq!(report.connections, 2, "discard forces a reconnect");
}

#[test]
fn reconnect_storm_against_promoted_standby_is_bit_identical() {
    let p = pcfg();
    let expected = expected_estimates(&p);

    let primary = Daemon::start(daemon_cfg(&p)).unwrap();
    let primary_addr = primary.ingest_addr();
    let standby = Daemon::start(DaemonConfig {
        standby_of: Some(primary_addr.to_string()),
        ..daemon_cfg(&p)
    })
    .unwrap();
    wait_for_peer(primary.query_addr());

    // The primary dies (gracefully here; `tests/failover.rs` does it
    // with an abort) before a single frame lands, and the standby takes
    // over.
    primary.drain();
    primary.join().unwrap();
    assert_eq!(standby.promote(), 2);

    let addrs = vec![primary_addr.to_string(), standby.ingest_addr().to_string()];
    let echo = echo();
    let mut workers = Vec::new();
    for shard in 0..p.shards {
        let backlog = DeltaFrameSource::new(&p, shard).unwrap().collect_epochs();
        let addrs = addrs.clone();
        let acfg = AgentConfig {
            // Cut the first connections mid-stream: every agent storms
            // the promoted standby with reconnect-and-resume sessions.
            plan: FaultPlan {
                faulty_connections: 8,
                cut_after: Some(1500),
                ..FaultPlan::default()
            },
            max_attempts: 600,
            ack_timeout: Duration::from_millis(300),
            backoff: Backoff {
                base: Duration::from_millis(2),
                cap: Duration::from_millis(40),
                seed: shard as u64 + 1,
            },
            ..AgentConfig::new(shard as u64 + 1, echo)
        };
        workers.push(std::thread::spawn(move || {
            run_agent_rounds_failover(
                &acfg,
                backlog,
                &addrs,
                Duration::from_millis(100),
                Duration::from_millis(10),
            )
        }));
    }
    for w in workers {
        let report = w.join().unwrap().expect("agent finished after failover");
        assert!(
            report.failovers >= 1,
            "the dead primary must force a rotation"
        );
        assert!(
            report.connections > 1,
            "the cut plan must force reconnects against the standby"
        );
    }

    standby.drain();
    let report = standby.join().unwrap();
    assert_eq!(report.estimates, expected, "estimates after the storm");
    assert_eq!(report.term, 2);
}

#[test]
fn replication_handshake_enforces_config_and_term_fences() {
    let p = pcfg();
    let primary = Daemon::start(daemon_cfg(&p)).unwrap();

    // A standby built for a different fleet: refused before any record
    // could cross-pollinate the rings.
    let mut wrong = echo();
    wrong.seed ^= 1;
    let mut c = Client::connect(primary.ingest_addr());
    match c.hello(Role::Replicate, 0xEDD1, wrong) {
        Message::Error { code, .. } => assert_eq!(code, ErrorCode::ConfigMismatch),
        other => panic!("expected ConfigMismatch, got {other:?}"),
    }

    // A peer that has seen a higher term than ours: this node is a
    // deposed primary and must refuse writes rather than accept them
    // into a fenced timeline.
    let mut c = Client::connect(primary.ingest_addr());
    match c.hello(Role::Ingest, 1, echo().with_term(99)) {
        Message::Error { code, context, .. } => {
            assert_eq!(code, ErrorCode::NotPrimary);
            assert_eq!(context, 1, "the refusal carries the local (stale) term");
        }
        other => panic!("expected NotPrimary fence, got {other:?}"),
    }

    drop(c);
    primary.drain();
    primary.join().unwrap();
}
