//! The Zipf differential suite locking [`SparseFleet`]'s size-classed
//! slab storage to the dense [`FleetArena`]: seeded Zipf and backbone
//! streams are driven into both flavors in lockstep, and per-key
//! estimates, `keys_sorted()` order and checkpoint bytes must be
//! **bit-identical** — through mid-stream promotions, saturation,
//! restore-into-either-flavor, batched ≡ scalar ingest, and the windowed
//! collector's absorb path. Sparse storage is a strategy, not a wire
//! format: nothing observable may depend on it.
//!
//! The suite also stresses the open-addressed key index past a million
//! keys (bounded probe chains, panic-free growth). All cases are
//! deterministic; CI runs the whole file under both SIMD dispatch modes
//! (default and `SBITMAP_FORCE_SCALAR=1`).

use sbitmap::core::Checkpoint;
use sbitmap::hash::rng::{Rng, SplitMix64};
use sbitmap::stream::{distinct_items, zipf_stream};
use sbitmap::{FleetArena, SketchFleet, SparseFleet, WindowedFleet};

/// Deterministic per-case RNG.
fn rng(case: u64) -> SplitMix64 {
    SplitMix64::new(0x59a2_5e00_0000_0000 ^ case)
}

/// The backbone-shaped stream of `tests/fleet_arena.rs`: dense
/// link-index keys with sparse hashed outliers, repeating items.
fn backbone_stream(
    g: &mut SplitMix64,
    len: usize,
    key_space: u64,
    item_space: u64,
) -> Vec<(u64, u64)> {
    (0..len)
        .map(|_| {
            let key = if g.next_below(8) == 0 {
                g.next_u64() | (1 << 60)
            } else {
                g.next_below(key_space)
            };
            (key, g.next_below(item_space))
        })
        .collect()
}

/// The per-flow-shaped stream: `keys` distinct hashed keys drawn
/// Zipf(`alpha`), one fresh item per pair — hot keys promote through the
/// size classes, the tail stays in the smallest.
fn zipf_pairs(case: u64, keys: u64, total: u64, alpha: f64) -> Vec<(u64, u64)> {
    let (draws, _) = zipf_stream(case, keys, total, alpha);
    draws.into_iter().zip(0u64..).collect()
}

/// Assert every observable of the two flavors matches, bit for bit.
fn assert_lockstep(case: u64, sparse: &SparseFleet, dense: &FleetArena) {
    assert_eq!(sparse.len(), dense.len(), "case {case}: key count");
    assert_eq!(
        sparse.keys_sorted(),
        dense.keys_sorted(),
        "case {case}: key order"
    );
    assert_eq!(
        sparse.estimates().collect::<Vec<_>>(),
        dense.estimates().collect::<Vec<_>>(),
        "case {case}: estimates"
    );
    assert_eq!(
        sparse.saturated_keys(),
        dense.saturated_keys(),
        "case {case}: saturation"
    );
    for key in sparse.keys_sorted() {
        assert_eq!(sparse.fill(key), dense.fill(key), "case {case}: key {key}");
        assert_eq!(
            sparse.export_sketch(key).unwrap().bitmap().words(),
            dense.export_sketch(key).unwrap().bitmap().words(),
            "case {case}: bitmap words for key {key}"
        );
    }
    assert_eq!(
        sparse.checkpoint(),
        dense.checkpoint(),
        "case {case}: checkpoint bytes"
    );
}

#[test]
fn zipf_streams_stay_bit_identical_through_promotions() {
    for case in 0..6u64 {
        // 3k keys × 30k draws at Zipf 1.1: the head keys cross every
        // class boundary, the tail never leaves class 0.
        let pairs = zipf_pairs(case, 3_000, 30_000, 1.1);
        let seed = rng(case).next_u64();
        let mut sparse: SparseFleet = SparseFleet::new(100_000, 4_000, seed).unwrap();
        let mut dense: FleetArena = FleetArena::new(100_000, 4_000, seed).unwrap();
        // Mixed feeding: batches into sparse, pairwise into dense — the
        // router and the promotion machinery must be invisible.
        for chunk in pairs.chunks(4_000) {
            sparse.insert_batch(chunk);
            for &(k, item) in chunk {
                dense.insert_u64(k, item);
            }
        }
        let hist = sparse.class_histogram();
        assert!(
            hist.iter().skip(1).any(|&n| n > 0),
            "case {case}: the head must actually promote: {hist:?}"
        );
        assert!(
            hist[0] > hist.iter().skip(1).sum::<usize>(),
            "case {case}: the Zipf tail must dominate class 0: {hist:?}"
        );
        assert_lockstep(case, &sparse, &dense);
    }
}

#[test]
fn backbone_streams_stay_bit_identical() {
    for case in 0..6u64 {
        let mut g = rng(case ^ 0xbb);
        let pairs = backbone_stream(&mut g, 8_000, 24, 2_000);
        let seed = g.next_u64();
        let mut sparse: SparseFleet = SparseFleet::new(50_000, 2_000, seed).unwrap();
        let mut dense: FleetArena = FleetArena::new(50_000, 2_000, seed).unwrap();
        for chunk in pairs.chunks(1_500) {
            sparse.insert_batch(chunk);
            dense.insert_batch(chunk);
        }
        assert_lockstep(case, &sparse, &dense);
    }
}

#[test]
fn batched_ingest_is_scalar_identical() {
    for case in 0..4u64 {
        let pairs = zipf_pairs(case ^ 0x6a7c, 800, 12_000, 1.1);
        let seed = rng(case).next_u64();
        let mut batched: SparseFleet = SparseFleet::new(100_000, 4_000, seed).unwrap();
        let mut scalar: SparseFleet = SparseFleet::new(100_000, 4_000, seed).unwrap();
        let newly_batched = batched.insert_batch(&pairs);
        let mut newly_scalar = 0u64;
        for &(k, item) in &pairs {
            newly_scalar += u64::from(scalar.insert_u64(k, item));
        }
        assert_eq!(newly_batched, newly_scalar, "case {case}: newly set bits");
        assert_eq!(
            batched.checkpoint(),
            scalar.checkpoint(),
            "case {case}: checkpoint bytes"
        );
        assert_eq!(
            batched.class_histogram(),
            scalar.class_histogram(),
            "case {case}: same promotion decisions"
        );
    }
}

#[test]
fn saturation_stays_identical_across_all_three_flavors() {
    // The tiny (1_000, 120) configuration saturates quickly AND has a
    // stride too small for any sparse class — the start-in-largest path
    // must behave exactly like the dense arena and the HashMap fleet
    // through the clamped schedule tail.
    for case in 0..4u64 {
        let mut g = rng(case ^ 0x5a7);
        let pairs = backbone_stream(&mut g, 20_000, 4, u64::MAX);
        let seed = g.next_u64();
        let mut sparse: SparseFleet = SparseFleet::new(1_000, 120, seed).unwrap();
        let mut dense: FleetArena = FleetArena::new(1_000, 120, seed).unwrap();
        let mut fleet: SketchFleet = SketchFleet::new(1_000, 120, seed).unwrap();
        sparse.insert_batch(&pairs);
        dense.insert_batch(&pairs);
        fleet.insert_batch(&pairs);
        assert!(
            !sparse.saturated_keys().is_empty(),
            "case {case}: workload must actually saturate"
        );
        assert_eq!(sparse.class_count(), 1, "m=120 is dense-only");
        assert_lockstep(case, &sparse, &dense);
        assert_eq!(sparse.checkpoint(), fleet.checkpoint(), "case {case}");
    }
}

#[test]
fn checkpoints_restore_into_either_flavor_and_continue_in_lockstep() {
    for case in 0..4u64 {
        let pairs = zipf_pairs(case ^ 0xc5, 1_500, 15_000, 1.1);
        let seed = rng(case).next_u64();
        let mut sparse: SparseFleet = SparseFleet::new(100_000, 4_000, seed).unwrap();
        sparse.insert_batch(&pairs);
        let bytes = sparse.checkpoint();
        // Sparse checkpoint → dense restore, dense checkpoint → sparse
        // restore: the tag-9 frame is flavor-blind in both directions.
        let mut dense: FleetArena = Checkpoint::restore(&bytes).unwrap();
        assert_eq!(dense.checkpoint(), bytes, "case {case}: dense round-trip");
        let mut sparse2: SparseFleet = Checkpoint::restore(&dense.checkpoint()).unwrap();
        assert_eq!(
            sparse2.checkpoint(),
            bytes,
            "case {case}: sparse round-trip"
        );
        // Keep feeding all three — original, dense-restored,
        // sparse-restored — and they must stay in lockstep.
        let more = zipf_pairs(case ^ 0xdead, 1_500, 5_000, 1.1);
        sparse.insert_batch(&more);
        dense.insert_batch(&more);
        sparse2.insert_batch(&more);
        assert_lockstep(case, &sparse, &dense);
        assert_eq!(
            sparse.checkpoint(),
            sparse2.checkpoint(),
            "case {case}: restored sparse diverged"
        );
    }
}

#[test]
fn windowed_absorb_is_flavor_blind() {
    // A collector absorbing a sparse shard must land exactly the bytes
    // it would have landed absorbing the dense expansion of that shard —
    // including the tag-10 window checkpoint.
    for case in 0..3u64 {
        let pairs = zipf_pairs(case ^ 0x111d, 1_000, 8_000, 1.1);
        let seed = rng(case).next_u64();
        let mut shard_sparse: SparseFleet = SparseFleet::new(100_000, 4_000, seed).unwrap();
        let mut shard_dense: FleetArena = FleetArena::new(100_000, 4_000, seed).unwrap();
        shard_sparse.insert_batch(&pairs);
        shard_dense.insert_batch(&pairs);

        let mut via_sparse: WindowedFleet = WindowedFleet::new(100_000, 4_000, seed, 3).unwrap();
        let mut via_dense: WindowedFleet = WindowedFleet::new(100_000, 4_000, seed, 3).unwrap();
        assert!(via_sparse.absorb_epoch_sparse(0, &shard_sparse).unwrap());
        assert!(via_dense.absorb_epoch(0, &shard_dense).unwrap());
        assert_eq!(
            via_sparse.checkpoint(),
            via_dense.checkpoint(),
            "case {case}: tag-10 bytes"
        );
        // to_arena is the same bridge in one call.
        let mut via_bridge: WindowedFleet = WindowedFleet::new(100_000, 4_000, seed, 3).unwrap();
        assert!(via_bridge
            .absorb_epoch(0, &shard_sparse.to_arena())
            .unwrap());
        assert_eq!(
            via_bridge.checkpoint(),
            via_dense.checkpoint(),
            "case {case}"
        );
    }
}

#[test]
fn million_key_index_growth_is_bounded_and_panic_free() {
    // 1.1M distinct hashed keys through the batch router: the
    // open-addressed index must grow through many doublings without a
    // panic and keep probe chains bounded (the 7/8 load factor bounds
    // the expected chain; 64 is a generous hard ceiling), and the
    // class-0-dominated slab layout must stay a small fraction of the
    // dense arena's footprint.
    const KEYS: u64 = 1_100_000;
    let mut sparse: SparseFleet = SparseFleet::new(100_000, 4_000, 7).unwrap();
    let pairs: Vec<(u64, u64)> = distinct_items(0x1d, KEYS).zip(0u64..).collect();
    sparse.insert_batch(&pairs);
    assert_eq!(sparse.len(), KEYS as usize);
    assert!(
        sparse.index_max_probe() < 64,
        "probe chains blew up: {}",
        sparse.index_max_probe()
    );
    // One bit per key: everyone sits in the smallest class, and physical
    // storage is far below the 550+ MB the dense arena would pay.
    // `allocated_bytes` counts *capacity* (including Vec doubling slack
    // that never becomes resident), so the bound here is looser than the
    // 0.25x peak-RSS gate the bench asserts against the dense arena.
    assert_eq!(sparse.class_histogram()[0], KEYS as usize);
    assert!(
        sparse.allocated_bytes() < sparse.memory_bits() / 8 * 3 / 10,
        "sparse fleet lost its memory advantage: {} bytes for {} logical bits",
        sparse.allocated_bytes(),
        sparse.memory_bits()
    );
    // Keep feeding the same keys: lookups now hit the grown index; no
    // estimate may change except through real inserts.
    let before = sparse.estimate(pairs[0].0);
    sparse.insert_batch(&pairs); // duplicate items — all filtered
    assert_eq!(sparse.estimate(pairs[0].0), before, "duplicates leaked");
}
