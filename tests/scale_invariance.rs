//! Integration test of the paper's headline theorem: the S-bitmap's
//! relative error is scale-invariant and matches `(C − 1)^{−1/2}`, while
//! the competing families drift with the unknown cardinality.

use std::sync::Arc;

use sbitmap::baselines::{HyperLogLog, LogLog};
use sbitmap::core::{DistinctCounter, RateSchedule, SBitmap};
use sbitmap::hash::mix64;
use sbitmap::hash::SplitMix64Hasher;
use sbitmap::stats::replicate;
use sbitmap::stream::distinct_items;

fn sbitmap_rrmse(schedule: &Arc<RateSchedule>, n: u64, reps: usize, salt: u64) -> f64 {
    let schedule = schedule.clone();
    replicate(reps, move |r| {
        let seed = mix64(r ^ salt);
        let mut s = SBitmap::with_shared_schedule(schedule.clone(), SplitMix64Hasher::new(seed));
        for item in distinct_items(seed, n) {
            s.insert_u64(item);
        }
        (n as f64, s.estimate())
    })
    .rrmse()
}

#[test]
fn rrmse_is_flat_across_four_decades() {
    let schedule = Arc::new(RateSchedule::from_memory(1 << 20, 4000).unwrap());
    let eps = schedule.dims().epsilon();
    let mut measured = Vec::new();
    for (i, &n) in [100u64, 1_000, 10_000, 100_000, 1_000_000]
        .iter()
        .enumerate()
    {
        let rrmse = sbitmap_rrmse(&schedule, n, 250, 0x5ca1e + i as u64);
        measured.push((n, rrmse));
        // Every decade within 35% of the theoretical error (250 reps of
        // an estimator of a standard deviation: ~±9% MC noise at 3 sigma,
        // plus small-n discreteness).
        assert!(
            (rrmse / eps - 1.0).abs() < 0.35,
            "n={n}: rrmse {rrmse} vs eps {eps}"
        );
    }
    // And flat: max/min ratio below 1.6 across the decades.
    let max = measured.iter().map(|&(_, r)| r).fold(0.0, f64::max);
    let min = measured
        .iter()
        .map(|&(_, r)| r)
        .fold(f64::INFINITY, f64::min);
    assert!(max / min < 1.6, "not flat: {measured:?}");
}

#[test]
fn unbiasedness_across_scales() {
    // Theorem 3: E[n̂] = n. The mean over R replicates should sit within
    // ~4 standard errors of n.
    let schedule = Arc::new(RateSchedule::from_memory(1 << 20, 1800).unwrap());
    let eps = schedule.dims().epsilon();
    for &n in &[500u64, 50_000] {
        let reps = 400;
        let stats = {
            let schedule = schedule.clone();
            replicate(reps, move |r| {
                let seed = mix64(r ^ n.rotate_left(13));
                let mut s =
                    SBitmap::with_shared_schedule(schedule.clone(), SplitMix64Hasher::new(seed));
                for item in distinct_items(seed, n) {
                    s.insert_u64(item);
                }
                (n as f64, s.estimate())
            })
        };
        let tol = 4.0 * eps / (reps as f64).sqrt();
        assert!(
            stats.mean_bias().abs() < tol,
            "n={n}: bias {} (tol {tol})",
            stats.mean_bias()
        );
    }
}

#[test]
fn loglog_family_error_drifts_with_scale() {
    // The contrast claim: with the same memory, LogLog/HLL accuracy
    // changes across the range (here: tiny n vs large n under m = 3200
    // bits), while the S-bitmap's does not (tested above).
    let m = 3_200;
    let n_max = 1 << 20;
    let reps = 150;
    let rrmse = |make: &(dyn Fn(u64) -> Box<dyn DistinctCounter> + Sync), n: u64, salt: u64| {
        replicate(reps, move |r| {
            let seed = mix64(r ^ salt);
            let mut c = make(seed);
            for item in distinct_items(seed, n) {
                c.insert_u64(item);
            }
            (n as f64, c.estimate())
        })
        .rrmse()
    };
    let ll: &(dyn Fn(u64) -> Box<dyn DistinctCounter> + Sync) =
        &move |seed| Box::new(LogLog::with_memory(m, n_max, seed).unwrap());
    let hll: &(dyn Fn(u64) -> Box<dyn DistinctCounter> + Sync) =
        &move |seed| Box::new(HyperLogLog::with_memory(m, n_max, seed).unwrap());
    // LogLog at n = 50 is drastically worse than at n = 100k.
    let ll_small = rrmse(ll, 50, 1);
    let ll_large = rrmse(ll, 100_000, 2);
    assert!(
        ll_small > 2.0 * ll_large,
        "LogLog small-n {ll_small} vs large-n {ll_large}"
    );
    // HLL is patched at small n by linear counting but still not flat:
    // its error at mid-range differs measurably from the loglog regime.
    let hll_small = rrmse(hll, 50, 3);
    let hll_large = rrmse(hll, 100_000, 4);
    let ratio = hll_small.max(hll_large) / hll_small.min(hll_large);
    assert!(
        ratio > 1.5,
        "HLL unexpectedly flat: {hll_small} vs {hll_large}"
    );
}
