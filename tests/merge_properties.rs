//! Merge-equals-union property tests for every mergeable estimator.
//!
//! For each sketch family implementing `MergeableCounter`, and over many
//! seeded random splits of a random universe into substreams `A` and `B`
//! (with overlap and duplicates), the merged sketch must be
//! **bit-identical** to the sketch built from the union stream — not just
//! estimate-equal. Bit-identity is asserted on the serialized checkpoint
//! bytes, which capture the complete sketch state, so any divergence in
//! any register/bit/minimum fails the test.
//!
//! This is the deterministic in-tree stand-in for a proptest suite (the
//! build is offline): 8 derived seeds × 4 split profiles per family.

use sbitmap::hash::rng::{Rng, Xoshiro256StarStar};
use sbitmap::{
    Checkpoint, DistinctCounter, FmSketch, HyperLogLog, KMinValues, LinearCounting, LogLog,
    MergeableCounter, MrBitmap, VirtualBitmap,
};

/// Split profiles: (universe size, probability an item goes to A,
/// probability it also/only goes to B — yielding disjoint, overlapping
/// and nested stream pairs).
const PROFILES: [(u64, f64, f64); 4] = [
    (4_000, 0.5, 0.5),  // random overlap
    (4_000, 1.0, 0.3),  // B nested in A
    (10_000, 0.5, 0.0), // near-disjoint (items not in A go to B below)
    (300, 0.9, 0.9),    // tiny universe, heavy overlap
];

/// Drive one family through every profile × seed. `build` must return
/// identically-configured sketches for equal seeds.
fn check_family<T, F>(family: &str, build: F)
where
    T: DistinctCounter + MergeableCounter + Checkpoint,
    F: Fn(u64) -> T,
{
    for seed in 0..8u64 {
        for (profile, &(universe, p_a, p_b)) in PROFILES.iter().enumerate() {
            let mut rng = Xoshiro256StarStar::new(seed ^ (profile as u64) << 32);
            let mut a_items = Vec::new();
            let mut b_items = Vec::new();
            for item in 0..universe {
                let in_a = rng.bernoulli(p_a);
                let in_b = rng.bernoulli(p_b);
                if in_a {
                    a_items.push(item);
                }
                if in_b || !in_a {
                    b_items.push(item);
                }
                // Sprinkle duplicates: merging must be idempotent under
                // them exactly as streaming is.
                if rng.bernoulli(0.2) {
                    if in_a {
                        a_items.push(item);
                    } else {
                        b_items.push(item);
                    }
                }
            }
            rng.shuffle(&mut a_items);
            rng.shuffle(&mut b_items);

            let mut sketch_a = build(seed);
            let mut sketch_b = build(seed);
            let mut sketch_union = build(seed);
            for &i in &a_items {
                sketch_a.insert_u64(i);
                sketch_union.insert_u64(i);
            }
            for &i in &b_items {
                sketch_b.insert_u64(i);
                sketch_union.insert_u64(i);
            }
            sketch_a.merge_from(&sketch_b).expect("compatible configs");
            assert_eq!(
                sketch_a.checkpoint(),
                sketch_union.checkpoint(),
                "{family}: merge(sketch(A), sketch(B)) diverged from \
                 sketch(A ∪ B) at seed {seed}, profile {profile}"
            );
        }
    }
}

#[test]
fn linear_counting_merge_equals_union() {
    check_family("linear-counting", |seed| {
        LinearCounting::new(8_000, seed).unwrap()
    });
}

#[test]
fn virtual_bitmap_merge_equals_union() {
    check_family("virtual-bitmap", |seed| {
        VirtualBitmap::for_cardinality(2_048, 8_000, seed).unwrap()
    });
}

#[test]
fn mr_bitmap_merge_equals_union() {
    check_family("mr-bitmap", |seed| {
        MrBitmap::with_memory(6_000, 100_000, seed).unwrap()
    });
}

#[test]
fn fm_sketch_merge_equals_union() {
    check_family("fm-pcsa", |seed| FmSketch::new(128, seed).unwrap());
}

#[test]
fn loglog_merge_equals_union() {
    check_family("loglog", |seed| LogLog::new(256, 5, seed).unwrap());
}

#[test]
fn hyperloglog_merge_equals_union() {
    check_family("hyperloglog", |seed| {
        HyperLogLog::new(256, 5, seed).unwrap()
    });
}

#[test]
fn kmv_merge_equals_union() {
    check_family("kmv", |seed| KMinValues::new(64, seed).unwrap());
}

#[test]
fn merge_is_commutative_and_associative_on_state() {
    // Beyond pairwise union: fold order must not matter, because the
    // collector merges shard checkpoints in arrival order.
    let build = |seed| HyperLogLog::new(512, 5, seed).unwrap();
    let mut parts: Vec<HyperLogLog> = Vec::new();
    for p in 0..5u64 {
        let mut s = build(3);
        for i in (p * 2_000)..(p * 2_000 + 3_000) {
            s.insert_u64(i);
        }
        parts.push(s);
    }
    let mut forward = build(3);
    for p in &parts {
        forward.merge_from(p).unwrap();
    }
    let mut backward = build(3);
    for p in parts.iter().rev() {
        backward.merge_from(p).unwrap();
    }
    assert_eq!(forward.checkpoint(), backward.checkpoint());
}
