//! Property tests locking the fleet storage flavors together: the
//! arena-packed fleet must be *bit-identical* (per-key bitmap words and
//! fill) and *checkpoint-byte-identical* to the HashMap fleet over
//! seeded random `(key, item)` streams — including the saturation and
//! restore paths — and the sharded fleet's per-key estimates must be
//! invariant in the shard count.
//!
//! This workspace builds offline, so instead of proptest these
//! properties run over deterministic randomized cases drawn from the
//! in-tree [`sbitmap::hash::rng`] generators: every case is reproducible
//! from its loop index, and a failure message names the case that broke.

use sbitmap::core::Checkpoint;
use sbitmap::hash::rng::{Rng, SplitMix64};
use sbitmap::{FleetArena, ParallelFleet, SketchFleet};

/// Deterministic per-case RNG.
fn rng(case: u64) -> SplitMix64 {
    SplitMix64::new(0xf1ee_7000_0000_0000 ^ case)
}

/// A seeded random `(key, item)` stream: keys mix dense (link-index
/// shaped) and sparse (hashed ids), items repeat so duplicate filtering
/// is exercised.
fn stream(g: &mut SplitMix64, len: usize, key_space: u64, item_space: u64) -> Vec<(u64, u64)> {
    (0..len)
        .map(|_| {
            let key = if g.next_below(8) == 0 {
                // Sparse outlier: a high hashed key.
                g.next_u64() | (1 << 60)
            } else {
                g.next_below(key_space)
            };
            (key, g.next_below(item_space))
        })
        .collect()
}

#[test]
fn arena_is_bit_identical_to_hashmap_fleet_over_random_streams() {
    for case in 0..12u64 {
        let mut g = rng(case);
        let pairs = stream(&mut g, 8_000, 24, 2_000);
        let seed = g.next_u64();
        let mut fleet: SketchFleet = SketchFleet::new(50_000, 2_000, seed).unwrap();
        let mut arena: FleetArena = FleetArena::new(50_000, 2_000, seed).unwrap();
        // Mixed feeding: batches into the arena, pairwise into the
        // HashMap fleet — grouping must be invisible.
        for chunk in pairs.chunks(1_500) {
            arena.insert_batch(chunk);
            for &(k, item) in chunk {
                fleet.insert_u64(k, item);
            }
        }
        assert_eq!(arena.len(), fleet.len(), "case {case}: key count");
        for (key, sketch) in fleet.sketches() {
            assert_eq!(
                arena.fill(key),
                Some(sketch.fill()),
                "case {case}: fill for key {key}"
            );
            let exported = arena.export_sketch(key).unwrap();
            assert_eq!(
                exported.bitmap().words(),
                sketch.bitmap().words(),
                "case {case}: bitmap words for key {key}"
            );
        }
        assert_eq!(
            arena.checkpoint(),
            fleet.checkpoint(),
            "case {case}: checkpoint bytes"
        );
    }
}

#[test]
fn saturation_path_stays_identical_and_restorable() {
    // A tiny configuration saturates quickly: the clamped tail of the
    // rate schedule and the truncated estimator must behave identically
    // in both flavors, and checkpoints of saturated fleets must
    // round-trip through either restore path.
    for case in 0..6u64 {
        let mut g = rng(case ^ 0x5a7);
        let pairs = stream(&mut g, 20_000, 4, u64::MAX);
        let seed = g.next_u64();
        let mut fleet: SketchFleet = SketchFleet::new(1_000, 120, seed).unwrap();
        let mut arena: FleetArena = FleetArena::new(1_000, 120, seed).unwrap();
        fleet.insert_batch(&pairs);
        arena.insert_batch(&pairs);
        assert!(
            !arena.saturated_keys().is_empty(),
            "case {case}: workload must actually saturate"
        );
        assert_eq!(
            arena.saturated_keys(),
            fleet.saturated_keys(),
            "case {case}"
        );
        let bytes = arena.checkpoint();
        assert_eq!(bytes, fleet.checkpoint(), "case {case}");
        // Cross-restore and keep feeding: the flavors must continue in
        // lockstep from restored state.
        let mut fleet2: SketchFleet = Checkpoint::restore(&bytes).unwrap();
        let mut arena2: FleetArena = Checkpoint::restore(&bytes).unwrap();
        let more = stream(&mut g, 2_000, 4, u64::MAX);
        fleet2.insert_batch(&more);
        arena2.insert_batch(&more);
        assert_eq!(
            arena2.checkpoint(),
            fleet2.checkpoint(),
            "case {case}: post-restore divergence"
        );
    }
}

#[test]
fn parallel_fleet_estimates_are_shard_count_invariant() {
    for case in 0..8u64 {
        let mut g = rng(case ^ 0x9a8d);
        let pairs = stream(&mut g, 10_000, 40, 5_000);
        let seed = g.next_u64();
        let shard_counts = [1usize, 2, 3, 7, 16];
        let mut reference: Option<Vec<(u64, f64)>> = None;
        let mut reference_bytes: Option<Vec<u8>> = None;
        for &shards in &shard_counts {
            let mut fleet: ParallelFleet =
                ParallelFleet::new(100_000, 2_000, seed, shards).unwrap();
            fleet.insert_batch(&pairs);
            let estimates: Vec<(u64, f64)> = fleet.estimates().collect();
            let bytes = fleet.checkpoint();
            match (&reference, &reference_bytes) {
                (None, _) => {
                    reference = Some(estimates);
                    reference_bytes = Some(bytes);
                }
                (Some(expect), Some(expect_bytes)) => {
                    assert_eq!(&estimates, expect, "case {case}: {shards} shards");
                    assert_eq!(&bytes, expect_bytes, "case {case}: {shards} shards");
                }
                _ => unreachable!(),
            }
        }
    }
}

#[test]
fn parallel_fleet_matches_single_threaded_arena_ingest() {
    // The acceptance property: sharded (multi-threaded) ingest must be
    // indistinguishable from single-threaded arena ingest, per key.
    for case in 0..6u64 {
        let mut g = rng(case ^ 0x717e);
        let pairs = stream(&mut g, 12_000, 64, 3_000);
        let seed = g.next_u64();
        let mut single: FleetArena = FleetArena::new(100_000, 2_000, seed).unwrap();
        let mut sharded: ParallelFleet = ParallelFleet::new(100_000, 2_000, seed, 8).unwrap();
        single.insert_batch(&pairs);
        sharded.insert_batch(&pairs);
        assert_eq!(single.len(), sharded.len(), "case {case}");
        for key in single.keys_sorted() {
            assert_eq!(
                sharded.export_sketch(key).unwrap().bitmap().words(),
                single.export_sketch(key).unwrap().bitmap().words(),
                "case {case}: key {key}"
            );
        }
        assert_eq!(sharded.checkpoint(), single.checkpoint(), "case {case}");
    }
}

#[test]
fn empty_and_single_key_edge_cases_round_trip() {
    let mut arena: FleetArena = FleetArena::new(50_000, 2_000, 3).unwrap();
    let fleet: SketchFleet = SketchFleet::new(50_000, 2_000, 3).unwrap();
    assert_eq!(arena.checkpoint(), fleet.checkpoint(), "empty fleets");
    arena.insert_batch(&[(9, 1)]);
    let mut fleet = fleet;
    fleet.insert_batch(&[(9, 1)]);
    assert_eq!(arena.checkpoint(), fleet.checkpoint(), "single pair");
    let restored: FleetArena = Checkpoint::restore(&arena.checkpoint()).unwrap();
    assert_eq!(restored.len(), 1);
    assert_eq!(restored.fill(9), arena.fill(9));
}
