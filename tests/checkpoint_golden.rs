//! Backward-compatibility lock for the checkpoint wire format.
//!
//! The hex strings below are *frozen v1 checkpoints* produced by the
//! original S-bitmap-only codec (before the tagged v2 format existed).
//! The v2 decoder must read them bit-identically, forever: measurement
//! nodes in the field may run old encoders long after the collector has
//! upgraded. If one of these tests fails, the decoder broke v1
//! compatibility — fix the decoder, never regenerate the vectors.

use std::sync::Arc;

use sbitmap::core::codec::{self, peek_kind, CounterKind};
use sbitmap::core::{AbsorbOutcome, FleetDeltaFrame, SBitmapError};
use sbitmap::{Checkpoint, DistinctCounter, FleetArena, RateSchedule, SBitmap, WindowedFleet};

fn unhex(s: &str) -> Vec<u8> {
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).expect("hex"))
        .collect()
}

/// v1 checkpoint of `SBitmap::with_memory(10_000, 256, 42)` after
/// inserting `0..500u64` — fill 106.
const GOLDEN_V1_M256: &str = "53424d500110270000000000000001000000000000200000002a000000000000006a00000000000000351688e0a15c00b6e854d093aa1b0357a16c6270a908938270d0e20a27148fbe8292ce67e0f2e3f3";

/// v1 checkpoint of `SBitmap::with_memory(1_000, 63, 7)` after inserting
/// `0..80u64` — fill 20, non-word-multiple `m`.
const GOLDEN_V1_M63: &str = "53424d5001e8030000000000003f0000000000000020000000070000000000000014000000000000000a85045820aa0d61994505f3ceb78a83";

#[test]
fn golden_v1_m256_decodes_bit_identically() {
    let bytes = unhex(GOLDEN_V1_M256);
    let (version, kind) = peek_kind(&bytes).unwrap();
    assert_eq!(version, 1);
    assert_eq!(kind, CounterKind::SBitmap);

    let sketch: SBitmap = codec::decode(&bytes).unwrap();
    assert_eq!(sketch.dims().n_max(), 10_000);
    assert_eq!(sketch.dims().m(), 256);
    assert_eq!(sketch.seed(), 42);
    assert_eq!(sketch.fill(), 106);
    // Exact f64 equality: the estimate is a pure function of the decoded
    // state, recorded when the vector was frozen.
    assert_eq!(sketch.estimate(), 549.312_870_555_323_1);

    // The decoded state is the same state the original encoder saw:
    // rebuilding the sketch from scratch reproduces it bit for bit.
    let mut rebuilt = SBitmap::with_memory(10_000, 256, 42).unwrap();
    for i in 0..500u64 {
        rebuilt.insert_u64(i);
    }
    assert_eq!(sketch.bitmap(), rebuilt.bitmap());
    assert_eq!(sketch.fill(), rebuilt.fill());
}

#[test]
fn golden_v1_m63_decodes_bit_identically() {
    let bytes = unhex(GOLDEN_V1_M63);
    let sketch: SBitmap = codec::decode(&bytes).unwrap();
    assert_eq!(sketch.dims().n_max(), 1_000);
    assert_eq!(sketch.dims().m(), 63, "non-word-multiple m");
    assert_eq!(sketch.seed(), 7);
    assert_eq!(sketch.fill(), 20);
    assert_eq!(sketch.estimate(), 53.977_649_977_398_89);

    let mut rebuilt = SBitmap::with_memory(1_000, 63, 7).unwrap();
    for i in 0..80u64 {
        rebuilt.insert_u64(i);
    }
    assert_eq!(sketch.bitmap(), rebuilt.bitmap());
}

#[test]
fn golden_v1_reencodes_as_equivalent_v2() {
    // Upgrading a v1 checkpoint: decode, re-encode (v2), decode again —
    // state and future behaviour must be unchanged.
    let v1: SBitmap = codec::decode(&unhex(GOLDEN_V1_M256)).unwrap();
    let v2_bytes = v1.checkpoint();
    let (version, _) = peek_kind(&v2_bytes).unwrap();
    assert_eq!(version, 2, "new encodes are always v2");
    // v2 is one byte longer than v1: the kind tag.
    assert_eq!(v2_bytes.len(), unhex(GOLDEN_V1_M256).len() + 1);

    let mut v2: SBitmap = codec::decode(&v2_bytes).unwrap();
    let mut v1 = v1;
    assert_eq!(v2.bitmap(), v1.bitmap());
    assert_eq!(v2.fill(), v1.fill());
    for i in 500..2_000u64 {
        v1.insert_u64(i);
        v2.insert_u64(i);
    }
    assert_eq!(v2.fill(), v1.fill(), "identical evolution after restore");
    assert_eq!(v2.bitmap(), v1.bitmap());
}

#[test]
fn golden_v1_corruption_is_still_detected() {
    let bytes = unhex(GOLDEN_V1_M63);
    for pos in [0usize, 4, 6, 20, 41, bytes.len() - 1] {
        let mut bad = bytes.clone();
        bad[pos] ^= 1;
        assert!(
            codec::decode::<sbitmap::hash::SplitMix64Hasher>(&bad).is_err(),
            "v1 corruption at byte {pos} accepted"
        );
    }
    assert!(codec::decode::<sbitmap::hash::SplitMix64Hasher>(&bytes[..30]).is_err());
}

// ---------------------------------------------------------------------
// v2 fleet checkpoints (tags 9 and 10) — frozen when wire v3 landed
// ---------------------------------------------------------------------
//
// The v3 delta frames ride *alongside* the v2 checkpoint kinds: a
// collector must keep reading full fleet (tag 9) and windowed-fleet
// (tag 10) frames forever, because v2-only nodes negotiate down to
// full-frame shipping. The vectors were produced by [`rebuilt_fleet`] /
// [`rebuilt_ring`] below at the moment v3 landed; if decoding them
// fails, fix the decoder — never regenerate the vectors.

/// v2 tag-9 checkpoint of the [`rebuilt_fleet`] arena.
const GOLDEN_V2_FLEET: &str = "53424d50020988130000000000002c01000000000000200000000900000000000000030000000000000003000000000000002100000000000000440020000050510000004001820200002000408410020086000080340020810200480000010000000b000000000000001b00000000000000000180000000000102000430804000000040003305001400000404228000000000810000030000002a00000000000000220000000000000000a0020000000020000840010202100002200001024000008802002c09900898006004000900000041760e1910c6b62d";

/// v2 tag-10 checkpoint of the [`rebuilt_ring`] two-epoch window.
const GOLDEN_V2_RING: &str = "53424d50020a88130000000000002c01000000000000200000000900000000000000020000000000000001000000000000000000000000000000000000000000000002000000000000000000000000000000030000000000000003000000000000002100000000000000440020000050510000004001820200002000408410020086000080340020810200480000010000000b000000000000001b00000000000000000180000000000102000430804000000040003305001400000404228000000000810000030000002a00000000000000220000000000000000a0020000000020000840010202100002200001024000008802002c0990089800600400090000000100000000000000030000000000000003000000000000002100000000000000440020000050510000004001820200002000408410020086000080340020810200480000010000000b000000000000001b00000000000000000180000000000102000430804000000040003305001400000404228000000000810000030000002a00000000000000220000000000000000a0020000000020000840010202100002200001024000008802002c0990089800600400090000006ede910cda2e2d5d";

/// The exact construction the tag-9/10 vectors were frozen from.
fn rebuilt_fleet() -> FleetArena {
    let schedule = Arc::new(RateSchedule::from_memory(5_000, 300).unwrap());
    let mut fleet: FleetArena = FleetArena::with_schedule(schedule, 9);
    for key in [3u64, 11, 42] {
        fleet.touch(key);
        for item in 0..40u64 {
            fleet.insert_u64(key, key * 1_000 + item);
        }
    }
    fleet
}

fn rebuilt_ring() -> WindowedFleet {
    let fleet = rebuilt_fleet();
    let mut ring: WindowedFleet =
        WindowedFleet::with_schedule(fleet.schedule().clone(), 9, 2).unwrap();
    ring.absorb_epoch(0, &fleet).unwrap();
    ring.advance_to(1).unwrap();
    ring.absorb_epoch(1, &fleet).unwrap();
    ring
}

#[test]
fn golden_v2_fleet_tag9_decodes_bit_identically() {
    let bytes = unhex(GOLDEN_V2_FLEET);
    let (version, kind) = peek_kind(&bytes).unwrap();
    assert_eq!(version, 2);
    assert_eq!(kind, CounterKind::SketchFleet);

    let fleet: FleetArena = Checkpoint::restore(&bytes).unwrap();
    assert_eq!(fleet.keys_sorted(), vec![3, 11, 42]);
    assert_eq!(fleet.schedule().dims().n_max(), 5_000);
    assert_eq!(fleet.schedule().dims().m(), 300);
    assert_eq!(fleet.seed(), 9);
    // Exact f64 equality: estimates are pure functions of the decoded
    // state, recorded when the vector was frozen.
    assert_eq!(fleet.fill(3), Some(33));
    assert_eq!(fleet.estimate(3), Some(45.439_429_688_653_73));
    assert_eq!(fleet.fill(11), Some(27));
    assert_eq!(fleet.estimate(11), Some(34.997_461_597_223_01));
    assert_eq!(fleet.fill(42), Some(34));
    assert_eq!(fleet.estimate(42), Some(47.294_933_432_440_85));

    // The decoded state is the state the encoder saw, and today's
    // encoder still emits the exact frozen bytes.
    assert_eq!(fleet.checkpoint(), bytes);
    assert_eq!(rebuilt_fleet().checkpoint(), bytes);
}

#[test]
fn golden_v2_ring_tag10_decodes_bit_identically() {
    let bytes = unhex(GOLDEN_V2_RING);
    let (version, kind) = peek_kind(&bytes).unwrap();
    assert_eq!(version, 2);
    assert_eq!(kind, CounterKind::WindowedFleet);

    let ring: WindowedFleet = Checkpoint::restore(&bytes).unwrap();
    assert_eq!(ring.keys_sorted(), vec![3, 11, 42]);
    assert_eq!(ring.estimate(3), Some(45.439_429_688_653_73));
    assert_eq!(ring.estimate(11), Some(34.997_461_597_223_01));
    assert_eq!(ring.estimate(42), Some(47.294_933_432_440_85));

    assert_eq!(ring.checkpoint(), bytes);
    assert_eq!(rebuilt_ring().checkpoint(), bytes);
}

// ---------------------------------------------------------------------
// v3 delta chain — frozen wire frames, replayed hostile
// ---------------------------------------------------------------------
//
// One shard's three-round chain for epoch 0 (round 0 is the baseline
// reset), frozen from [`rebuilt_chain`]. The chain must keep decoding
// forever, and absorbing it — in order, out of order, with duplicates —
// must converge to the frozen tag-10 ring checkpoint, which is also
// exactly what the uncompressed full-frame absorb produces.

const GOLDEN_V3_ROUND0: &str = "53424d50030bd00700000000000082000000000000002000000009000000000000000000000000000000000000000300000000000000010000000000000010000000010308010e1504030602040a170402040b050000000000000011000000010101032202010110050f03020102100d040900000000000000130000000109070b020905020a0411010603040101081606f1f3268282e33f37";
const GOLDEN_V3_ROUND1: &str = "53424d50030bd007000000000000820000000000000020000000090000000000000000000000000000000100000003000000000000000100000000000000140000000107090302060f01030207010c02010c0803020a1005000000000000001100000001000406020a0103120412030701040c0c0a09000000000000000e000000010c0e06030b120703042201030b020d8ff0ce237d4931";
const GOLDEN_V3_ROUND2: &str = "53424d50030bd0070000000000008200000000000000200000000900000000000000000000000000000002000000030000000000000001000000000000000e000000010008010614021a0a04080a16040605000000000000000d000000010e0401010c0e0e0b04080c0f0f09000000000000000b0000000105080a011101090e18100aea2c60a25d7e7138";

/// The tag-10 checkpoint of a fresh two-epoch ring after absorbing the
/// whole chain (equivalently: one full-frame absorb of the source
/// arena's final state).
const GOLDEN_V3_RESULT: &str = "53424d50020ad0070000000000008200000000000000200000000900000000000000020000000000000000000000000000000000000000000000000000000000000001000000000000000000000000000000030000000000000001000000000000003200000000000000899b290c28ccc9d1d43228c889262087000000000000000005000000000000002f000000000000003754dc04815e0118a5b8bea080421821000000000000000009000000000000002c000000000000002032812d496e88088374481e10021b840300000000000000c7cfed4a7866f0ec";

const CHAIN_KEYS: [u64; 3] = [1, 5, 9];

fn chain_schedule() -> Arc<RateSchedule> {
    // m = 130: a non-word-multiple stride, so the chain also locks the
    // tail-word handling of the run coder.
    Arc::new(RateSchedule::from_memory(2_000, 130).unwrap())
}

/// The exact construction the v3 vectors were frozen from: three ingest
/// bursts into one arena, a frame per round carrying the XOR of each
/// key's words against the previous round's snapshot (round 0 carries a
/// record for every key — the baseline reset). Returns the frames and
/// the arena's final state.
fn rebuilt_chain() -> (Vec<FleetDeltaFrame>, FleetArena) {
    let schedule = chain_schedule();
    let dims = *schedule.dims();
    let sampling_bits = schedule.split().sampling_bits();
    let stride = dims.m().div_ceil(64);
    let mut arena: FleetArena = FleetArena::with_schedule(schedule, 9);
    for key in CHAIN_KEYS {
        arena.touch(key);
    }
    let mut prev = vec![vec![0u64; stride]; CHAIN_KEYS.len()];
    let mut frames = Vec::new();
    for round in 0..3u32 {
        for key in CHAIN_KEYS {
            for item in 0..(25 * (u64::from(round) + 1)) {
                arena.insert_u64(key, key * 10_000 + u64::from(round) * 1_000 + item);
            }
        }
        let mut frame = FleetDeltaFrame::new(dims.n_max(), dims.m(), sampling_bits, 9, 0, round);
        for (i, key) in CHAIN_KEYS.into_iter().enumerate() {
            let words = arena.slot_words(key).unwrap();
            let delta: Vec<u64> = words.iter().zip(&prev[i]).map(|(w, p)| w ^ p).collect();
            if round == 0 || delta.iter().any(|&w| w != 0) {
                frame.push(key, &delta);
            }
            prev[i].copy_from_slice(words);
        }
        frames.push(frame);
    }
    (frames, arena)
}

fn chain_frames() -> Vec<FleetDeltaFrame> {
    [GOLDEN_V3_ROUND0, GOLDEN_V3_ROUND1, GOLDEN_V3_ROUND2]
        .iter()
        .map(|hex| FleetDeltaFrame::decode(&unhex(hex)).unwrap())
        .collect()
}

#[test]
fn golden_v3_chain_decodes_and_reencodes_bit_identically() {
    for (round, hex) in [GOLDEN_V3_ROUND0, GOLDEN_V3_ROUND1, GOLDEN_V3_ROUND2]
        .iter()
        .enumerate()
    {
        let bytes = unhex(hex);
        let (version, kind) = peek_kind(&bytes).unwrap();
        assert_eq!(version, 3);
        assert_eq!(kind, CounterKind::FleetDelta);
        let frame = FleetDeltaFrame::decode(&bytes).unwrap();
        assert_eq!(frame.epoch, 0);
        assert_eq!(frame.round, round as u32);
        assert_eq!(frame.m, 130);
        assert_eq!(frame.is_baseline(), round == 0);
        assert_eq!(
            frame.records.iter().map(|r| r.key).collect::<Vec<_>>(),
            CHAIN_KEYS,
            "every round of this chain touches every key"
        );
        assert_eq!(frame.encode(), bytes, "re-encode emits the frozen bytes");
    }
    // Today's encoder still produces the exact frozen chain.
    let (frames, _) = rebuilt_chain();
    for (frame, hex) in frames
        .iter()
        .zip([GOLDEN_V3_ROUND0, GOLDEN_V3_ROUND1, GOLDEN_V3_ROUND2])
    {
        assert_eq!(frame.encode(), unhex(hex));
    }
}

#[test]
fn golden_v3_chain_absorbs_bit_identically_to_the_uncompressed_path() {
    let frames = chain_frames();
    let mut ring: WindowedFleet = WindowedFleet::with_schedule(chain_schedule(), 9, 2).unwrap();
    for f in &frames {
        assert_eq!(
            ring.absorb_delta_from(77, f).unwrap(),
            AbsorbOutcome::Absorbed
        );
    }
    assert_eq!(ring.checkpoint(), unhex(GOLDEN_V3_RESULT));
    assert_eq!(ring.estimate(1), Some(169.728_287_912_780_4));
    assert_eq!(ring.estimate(5), Some(146.888_386_434_446_4));
    assert_eq!(ring.estimate(9), Some(126.742_541_464_977_04));

    // The uncompressed pipeline — one full v2 frame of the source
    // arena's final state — lands on the identical ring bytes.
    let (_, arena) = rebuilt_chain();
    let mut full: WindowedFleet = WindowedFleet::with_schedule(chain_schedule(), 9, 2).unwrap();
    assert_eq!(
        full.absorb_epoch_from(77, 0, &arena).unwrap(),
        AbsorbOutcome::Absorbed
    );
    assert_eq!(full.checkpoint(), unhex(GOLDEN_V3_RESULT));
}

#[test]
fn golden_v3_chain_survives_duplication_and_reorder() {
    let frames = chain_frames();
    let mut ring: WindowedFleet = WindowedFleet::with_schedule(chain_schedule(), 9, 2).unwrap();

    // A delta ahead of its baseline is a typed refusal, not corruption.
    match ring.absorb_delta_from(77, &frames[2]) {
        Err(SBitmapError::MissingBaseline { epoch: 0, round: 2 }) => {}
        other => panic!("expected MissingBaseline, got {other:?}"),
    }

    // At-least-once, out-of-order replay: baseline, then the rounds
    // reversed, then everything again as duplicates.
    assert_eq!(
        ring.absorb_delta_from(77, &frames[0]).unwrap(),
        AbsorbOutcome::Absorbed
    );
    assert_eq!(
        ring.absorb_delta_from(77, &frames[2]).unwrap(),
        AbsorbOutcome::Absorbed
    );
    assert_eq!(
        ring.absorb_delta_from(77, &frames[1]).unwrap(),
        AbsorbOutcome::Absorbed
    );
    for f in &frames {
        assert_eq!(
            ring.absorb_delta_from(77, f).unwrap(),
            AbsorbOutcome::Duplicate
        );
    }
    assert_eq!(ring.checkpoint(), unhex(GOLDEN_V3_RESULT));
}
