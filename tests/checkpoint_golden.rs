//! Backward-compatibility lock for the checkpoint wire format.
//!
//! The hex strings below are *frozen v1 checkpoints* produced by the
//! original S-bitmap-only codec (before the tagged v2 format existed).
//! The v2 decoder must read them bit-identically, forever: measurement
//! nodes in the field may run old encoders long after the collector has
//! upgraded. If one of these tests fails, the decoder broke v1
//! compatibility — fix the decoder, never regenerate the vectors.

use sbitmap::core::codec::{self, peek_kind, CounterKind};
use sbitmap::{Checkpoint, DistinctCounter, SBitmap};

fn unhex(s: &str) -> Vec<u8> {
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).expect("hex"))
        .collect()
}

/// v1 checkpoint of `SBitmap::with_memory(10_000, 256, 42)` after
/// inserting `0..500u64` — fill 106.
const GOLDEN_V1_M256: &str = "53424d500110270000000000000001000000000000200000002a000000000000006a00000000000000351688e0a15c00b6e854d093aa1b0357a16c6270a908938270d0e20a27148fbe8292ce67e0f2e3f3";

/// v1 checkpoint of `SBitmap::with_memory(1_000, 63, 7)` after inserting
/// `0..80u64` — fill 20, non-word-multiple `m`.
const GOLDEN_V1_M63: &str = "53424d5001e8030000000000003f0000000000000020000000070000000000000014000000000000000a85045820aa0d61994505f3ceb78a83";

#[test]
fn golden_v1_m256_decodes_bit_identically() {
    let bytes = unhex(GOLDEN_V1_M256);
    let (version, kind) = peek_kind(&bytes).unwrap();
    assert_eq!(version, 1);
    assert_eq!(kind, CounterKind::SBitmap);

    let sketch: SBitmap = codec::decode(&bytes).unwrap();
    assert_eq!(sketch.dims().n_max(), 10_000);
    assert_eq!(sketch.dims().m(), 256);
    assert_eq!(sketch.seed(), 42);
    assert_eq!(sketch.fill(), 106);
    // Exact f64 equality: the estimate is a pure function of the decoded
    // state, recorded when the vector was frozen.
    assert_eq!(sketch.estimate(), 549.312_870_555_323_1);

    // The decoded state is the same state the original encoder saw:
    // rebuilding the sketch from scratch reproduces it bit for bit.
    let mut rebuilt = SBitmap::with_memory(10_000, 256, 42).unwrap();
    for i in 0..500u64 {
        rebuilt.insert_u64(i);
    }
    assert_eq!(sketch.bitmap(), rebuilt.bitmap());
    assert_eq!(sketch.fill(), rebuilt.fill());
}

#[test]
fn golden_v1_m63_decodes_bit_identically() {
    let bytes = unhex(GOLDEN_V1_M63);
    let sketch: SBitmap = codec::decode(&bytes).unwrap();
    assert_eq!(sketch.dims().n_max(), 1_000);
    assert_eq!(sketch.dims().m(), 63, "non-word-multiple m");
    assert_eq!(sketch.seed(), 7);
    assert_eq!(sketch.fill(), 20);
    assert_eq!(sketch.estimate(), 53.977_649_977_398_89);

    let mut rebuilt = SBitmap::with_memory(1_000, 63, 7).unwrap();
    for i in 0..80u64 {
        rebuilt.insert_u64(i);
    }
    assert_eq!(sketch.bitmap(), rebuilt.bitmap());
}

#[test]
fn golden_v1_reencodes_as_equivalent_v2() {
    // Upgrading a v1 checkpoint: decode, re-encode (v2), decode again —
    // state and future behaviour must be unchanged.
    let v1: SBitmap = codec::decode(&unhex(GOLDEN_V1_M256)).unwrap();
    let v2_bytes = v1.checkpoint();
    let (version, _) = peek_kind(&v2_bytes).unwrap();
    assert_eq!(version, 2, "new encodes are always v2");
    // v2 is one byte longer than v1: the kind tag.
    assert_eq!(v2_bytes.len(), unhex(GOLDEN_V1_M256).len() + 1);

    let mut v2: SBitmap = codec::decode(&v2_bytes).unwrap();
    let mut v1 = v1;
    assert_eq!(v2.bitmap(), v1.bitmap());
    assert_eq!(v2.fill(), v1.fill());
    for i in 500..2_000u64 {
        v1.insert_u64(i);
        v2.insert_u64(i);
    }
    assert_eq!(v2.fill(), v1.fill(), "identical evolution after restore");
    assert_eq!(v2.bitmap(), v1.bitmap());
}

#[test]
fn golden_v1_corruption_is_still_detected() {
    let bytes = unhex(GOLDEN_V1_M63);
    for pos in [0usize, 4, 6, 20, 41, bytes.len() - 1] {
        let mut bad = bytes.clone();
        bad[pos] ^= 1;
        assert!(
            codec::decode::<sbitmap::hash::SplitMix64Hasher>(&bad).is_err(),
            "v1 corruption at byte {pos} accepted"
        );
    }
    assert!(codec::decode::<sbitmap::hash::SplitMix64Hasher>(&bytes[..30]).is_err());
}
