//! Property-based tests on the core data structures and the paper's
//! invariants.
//!
//! This workspace builds offline, so instead of proptest these
//! properties run over *deterministic* randomized cases drawn from the
//! in-tree [`sbitmap::hash::rng`] generators: every case is reproducible
//! from its loop index, and a failure message names the seed that broke.

use sbitmap::bitvec::{
    AtomicBitmap, BitStore, Bitmap, OwnedBitStore, PackedRegisters, SliceBitmap,
};
use sbitmap::core::{theory, ConcurrentSBitmap, Dimensioning, DistinctCounter, SBitmap};
use sbitmap::hash::rng::{Rng, SplitMix64};
use sbitmap::hash::{Hasher64, SplitMix64Hasher};

/// Deterministic per-case RNG.
fn rng(case: u64) -> SplitMix64 {
    SplitMix64::new(0x5eed_0000_0000_0000 ^ case)
}

#[test]
fn bitmap_set_get_agree_with_model() {
    for case in 0..64u64 {
        let mut g = rng(case);
        let len = 1 + g.next_below(2000) as usize;
        let mut b = Bitmap::new(len);
        let mut model = std::collections::HashSet::new();
        for _ in 0..64 {
            let i = g.next_below(2000) as usize;
            if i >= len {
                continue;
            }
            let newly = b.set(i);
            assert_eq!(newly, model.insert(i), "case {case}: set({i})");
        }
        assert_eq!(b.count_ones(), model.len(), "case {case}");
        for i in 0..len {
            assert_eq!(b.get(i), model.contains(&i), "case {case}: get({i})");
        }
        let ones: Vec<usize> = b.iter_ones().collect();
        let mut expect: Vec<usize> = model.into_iter().collect();
        expect.sort_unstable();
        assert_eq!(ones, expect, "case {case}");
    }
}

#[test]
fn bitmap_backends_agree_through_bitstore() {
    // The plain, atomic and slice-backed backends must be observationally
    // identical under the BitStore interface for any operation sequence.
    for case in 0..32u64 {
        let mut g = rng(case ^ 0xb17);
        let len = 1 + g.next_below(1500) as usize;
        let mut plain = <Bitmap as OwnedBitStore>::with_len(len);
        let mut atomic = <AtomicBitmap as OwnedBitStore>::with_len(len);
        let mut words = vec![0u64; len.div_ceil(64)];
        let mut sliced = SliceBitmap::new(&mut words, len).expect("stride matches");
        for _ in 0..128 {
            let i = g.next_below(len as u64) as usize;
            let newly = BitStore::set(&mut plain, i);
            assert_eq!(
                newly,
                BitStore::set(&mut atomic, i),
                "case {case}: set({i}) diverged (atomic)"
            );
            assert_eq!(
                newly,
                BitStore::set(&mut sliced, i),
                "case {case}: set({i}) diverged (slice)"
            );
        }
        assert_eq!(
            plain.count_ones(),
            BitStore::count_ones(&atomic),
            "case {case}"
        );
        assert_eq!(
            plain.count_ones(),
            BitStore::count_ones(&sliced),
            "case {case}"
        );
        for i in 0..len {
            assert_eq!(
                BitStore::get(&plain, i),
                BitStore::get(&atomic, i),
                "case {case}: get({i}) diverged (atomic)"
            );
            assert_eq!(
                BitStore::get(&plain, i),
                BitStore::get(&sliced, i),
                "case {case}: get({i}) diverged (slice)"
            );
        }
        assert_eq!(plain.words(), sliced.words(), "case {case}: words diverged");
    }
}

#[test]
fn registers_model_check() {
    for case in 0..64u64 {
        let mut g = rng(case ^ 0x4e9);
        let count = 1 + g.next_below(200) as usize;
        let width = 1 + (g.next_below(32) as u32);
        let mut r = PackedRegisters::new(count, width);
        let mut model = vec![0u32; count];
        let mask = r.max_value();
        for _ in 0..64 {
            let i = g.next_below(count as u64) as usize;
            let v = g.next_u64() as u32;
            r.set(i, v);
            model[i] = v & mask;
        }
        for (i, &m) in model.iter().enumerate() {
            assert_eq!(r.get(i), m, "case {case}: register {i}");
        }
    }
}

#[test]
fn dimensioning_round_trip() {
    for case in 0..64u64 {
        let mut g = rng(case ^ 0xd17);
        let n_max = 100 + g.next_below(10_000_000);
        let eps = (1 + g.next_below(29)) as f64 / 100.0;
        let d = Dimensioning::from_error(n_max, eps).unwrap();
        let back = Dimensioning::from_memory(n_max, d.m()).unwrap();
        assert!(back.epsilon() <= eps + 1e-9, "case {case}: eps grew");
        assert!(
            (back.c() - d.c()).abs() / d.c() < 0.05,
            "case {case}: C drifted"
        );
        assert!(back.b_max() >= 1 && back.b_max() <= back.m(), "case {case}");
    }
}

#[test]
fn estimator_is_monotone_in_fill() {
    for case in 0..16u64 {
        let mut g = rng(case ^ 0xe57);
        let n_max = 1_000 + g.next_below(1_000_000);
        let Ok(d) = Dimensioning::from_memory(n_max, 1200) else {
            continue;
        };
        let mut last = -1.0;
        for b in 0..=d.b_max() {
            let t = theory::t(&d, b);
            assert!(t > last, "case {case}: t not increasing at b={b}");
            last = t;
        }
    }
}

#[test]
fn sbitmap_duplicate_idempotence() {
    for case in 0..24u64 {
        let mut g = rng(case ^ 0xd0b);
        let seed = g.next_u64();
        let n_items = 1 + g.next_below(300) as usize;
        let items: Vec<u64> = (0..n_items).map(|_| g.next_u64()).collect();
        let mut s = SBitmap::with_memory(100_000, 2000, seed).unwrap();
        for &x in &items {
            s.insert_u64(x);
        }
        let fill = s.fill();
        let est = s.estimate();
        for &x in items.iter().rev() {
            s.insert_u64(x);
            s.insert_u64(x);
        }
        assert_eq!(s.fill(), fill, "case {case} (seed {seed})");
        assert_eq!(s.estimate(), est, "case {case} (seed {seed})");
    }
}

#[test]
fn sbitmap_fill_monotone_under_inserts() {
    for case in 0..8u64 {
        let seed = rng(case ^ 0xf11).next_u64();
        let mut s = SBitmap::with_memory(100_000, 2000, seed).unwrap();
        let mut last_fill = 0;
        for i in 0..2_000u64 {
            s.insert_u64(i);
            assert!(s.fill() >= last_fill, "case {case}: fill decreased");
            last_fill = s.fill();
        }
        assert!(s.estimate() <= 100_000.0 * 1.02, "case {case}");
    }
}

#[test]
fn sbitmap_estimate_scales_with_distinct_count() {
    for seed in 0..40u64 {
        let mut s = SBitmap::with_memory(100_000, 2000, seed).unwrap();
        for item in 0..5_000u64 {
            s.insert_u64(item.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ seed);
        }
        let rel = s.estimate() / 5_000.0 - 1.0;
        assert!(rel.abs() < 0.5, "seed {seed}: rel {rel}");
    }
}

#[test]
fn batched_ingest_is_bit_identical_to_scalar_on_any_prefix() {
    // The ISSUE's core equivalence property: for any stream and any
    // split point, `insert_hashes(prefix)` followed by item-at-a-time
    // inserts of the rest produces exactly the `(bitmap, fill)` of the
    // pure scalar feed — batching must be a pure perf transform.
    for case in 0..16u64 {
        let mut g = rng(case ^ 0xba7c);
        let seed = g.next_u64();
        let n = 500 + g.next_below(20_000) as usize;
        let hasher = SplitMix64Hasher::new(g.next_u64());
        // Duplicate-heavy stream: ~n/4 distinct values.
        let hashes: Vec<u64> = (0..n)
            .map(|_| hasher.hash_u64(g.next_below(n as u64 / 4 + 1)))
            .collect();
        let cut = g.next_below(n as u64 + 1) as usize;

        let mut scalar = SBitmap::with_memory(100_000, 2000, seed).unwrap();
        for &h in &hashes {
            scalar.insert_hash(h);
        }

        let mut mixed = SBitmap::with_memory(100_000, 2000, seed).unwrap();
        mixed.insert_hashes(&hashes[..cut]);
        for &h in &hashes[cut..] {
            mixed.insert_hash(h);
        }

        assert_eq!(
            mixed.fill(),
            scalar.fill(),
            "case {case}: fill diverged at cut {cut}"
        );
        assert_eq!(
            mixed.bitmap(),
            scalar.bitmap(),
            "case {case}: bitmap diverged at cut {cut}"
        );
    }
}

#[test]
fn batched_u64_ingest_matches_scalar_via_counter_trait() {
    for case in 0..8u64 {
        let mut g = rng(case ^ 0xabc1);
        let seed = g.next_u64();
        let n = 1 + g.next_below(5_000) as usize;
        let items: Vec<u64> = (0..n).map(|_| g.next_below(2_000)).collect();
        let mut scalar = SBitmap::with_memory(100_000, 2000, seed).unwrap();
        let mut batched = SBitmap::with_memory(100_000, 2000, seed).unwrap();
        for &x in &items {
            scalar.insert_u64(x);
        }
        batched.insert_u64s(&items);
        assert_eq!(batched.fill(), scalar.fill(), "case {case}");
        assert_eq!(batched.bitmap(), scalar.bitmap(), "case {case}");
    }
}

#[test]
fn concurrent_fill_equals_popcount_under_disjoint_threads() {
    // The ISSUE's concurrency property: N threads over disjoint item
    // ranges leave the sketch with fill == bitmap.count_ones().
    for (case, threads) in [(0u64, 2usize), (1, 4), (2, 8)] {
        let seed = rng(case ^ 0xcc2).next_u64();
        let sketch =
            std::sync::Arc::new(ConcurrentSBitmap::with_memory(1 << 20, 4000, seed).unwrap());
        let per_thread = 15_000u64;
        std::thread::scope(|scope| {
            for t in 0..threads as u64 {
                let sketch = std::sync::Arc::clone(&sketch);
                scope.spawn(move || {
                    let items: Vec<u64> = (t * per_thread..(t + 1) * per_thread).collect();
                    sketch.insert_u64s(&items);
                });
            }
        });
        assert_eq!(
            sketch.fill(),
            sketch.bitmap().count_ones(),
            "case {case}: popcount vs fill"
        );
        assert_eq!(
            sketch.fill(),
            sketch.fill_hint(),
            "case {case}: relaxed counter must converge at join"
        );
        let n = threads as f64 * per_thread as f64;
        let rel = sketch.estimate() / n - 1.0;
        assert!(rel.abs() < 0.3, "case {case}: rel {rel}");
    }
}

#[test]
fn concurrent_duplicates_across_threads_stay_exact() {
    // Every thread inserts the SAME items: racing duplicate sets must
    // still keep fill == popcount and the estimate near one thread's.
    let sketch = std::sync::Arc::new(ConcurrentSBitmap::with_memory(1 << 20, 4000, 77).unwrap());
    let items: Vec<u64> = (0..30_000u64).collect();
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let sketch = std::sync::Arc::clone(&sketch);
            let items = &items;
            scope.spawn(move || sketch.insert_u64s(items));
        }
    });
    assert_eq!(sketch.fill(), sketch.bitmap().count_ones());
    let rel = sketch.estimate() / 30_000.0 - 1.0;
    // Racing duplicates may sample a handful of extra bits (stale-rate
    // window); the estimate must stay well inside the design error band.
    assert!(rel.abs() < 0.3, "rel {rel}");
}
