//! Property-based tests (proptest) on the core data structures and the
//! paper's invariants.

use proptest::prelude::*;
use sbitmap::bitvec::{Bitmap, PackedRegisters};
use sbitmap::core::{theory, DistinctCounter, Dimensioning, SBitmap};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bitmap_set_get_agree(len in 1usize..2000, idxs in prop::collection::vec(0usize..2000, 0..64)) {
        let mut b = Bitmap::new(len);
        let mut model = std::collections::HashSet::new();
        for &i in idxs.iter().filter(|&&i| i < len) {
            let newly = b.set(i);
            prop_assert_eq!(newly, model.insert(i));
        }
        prop_assert_eq!(b.count_ones(), model.len());
        for i in 0..len {
            prop_assert_eq!(b.get(i), model.contains(&i));
        }
        let ones: Vec<usize> = b.iter_ones().collect();
        let mut expect: Vec<usize> = model.into_iter().collect();
        expect.sort_unstable();
        prop_assert_eq!(ones, expect);
    }

    #[test]
    fn registers_model_check(
        count in 1usize..200,
        width in 1u32..=32,
        writes in prop::collection::vec((0usize..200, 0u32..u32::MAX), 0..64)
    ) {
        let mut r = PackedRegisters::new(count, width);
        let mut model = vec![0u32; count];
        let mask = r.max_value();
        for &(i, v) in writes.iter().filter(|&&(i, _)| i < count) {
            r.set(i, v);
            model[i] = v & mask;
        }
        for (i, &m) in model.iter().enumerate() {
            prop_assert_eq!(r.get(i), m);
        }
    }

    #[test]
    fn registers_update_max_is_monotone(
        width in 2u32..=8,
        values in prop::collection::vec(0u32..300, 1..50)
    ) {
        let mut r = PackedRegisters::new(4, width);
        let mut best = 0u32;
        for &v in &values {
            r.update_max(1, v);
            best = best.max(v.min(r.max_value()));
            prop_assert_eq!(r.get(1), best);
        }
    }

    #[test]
    fn dimensioning_round_trip(n_max in 100u64..10_000_000, eps_pct in 1u32..30) {
        let eps = eps_pct as f64 / 100.0;
        let d = Dimensioning::from_error(n_max, eps).unwrap();
        // Solving back from the ceil'd memory must give at-least-as-good
        // accuracy and a nearby C.
        let back = Dimensioning::from_memory(n_max, d.m()).unwrap();
        prop_assert!(back.epsilon() <= eps + 1e-9);
        prop_assert!((back.c() - d.c()).abs() / d.c() < 0.05);
        // b_max stays inside the bitmap.
        prop_assert!(back.b_max() >= 1 && back.b_max() <= back.m());
    }

    #[test]
    fn estimator_is_monotone_in_fill(n_max in 1_000u64..1_000_000) {
        let d = Dimensioning::from_memory(n_max, 1200);
        prop_assume!(d.is_ok());
        let d = d.unwrap();
        let mut last = -1.0;
        for b in 0..=d.b_max() {
            let t = theory::t(&d, b);
            prop_assert!(t > last);
            last = t;
        }
    }

    #[test]
    fn sbitmap_duplicate_idempotence(items in prop::collection::vec(any::<u64>(), 1..300), seed in any::<u64>()) {
        let mut s = SBitmap::with_memory(100_000, 2000, seed).unwrap();
        for &x in &items {
            s.insert_u64(x);
        }
        let fill = s.fill();
        let est = s.estimate();
        // Re-inserting any multiset of already-seen items changes nothing.
        for &x in items.iter().rev() {
            s.insert_u64(x);
            s.insert_u64(x);
        }
        prop_assert_eq!(s.fill(), fill);
        prop_assert_eq!(s.estimate(), est);
    }

    #[test]
    fn sbitmap_fill_monotone_under_inserts(seed in any::<u64>()) {
        let mut s = SBitmap::with_memory(100_000, 2000, seed).unwrap();
        let mut last_fill = 0;
        for i in 0..2_000u64 {
            s.insert_u64(i);
            prop_assert!(s.fill() >= last_fill);
            last_fill = s.fill();
        }
        // Estimate never exceeds the truncation point ~ N.
        prop_assert!(s.estimate() <= 100_000.0 * 1.02);
    }

    #[test]
    fn sbitmap_estimate_scales_with_distinct_count(seed in 0u64..1000) {
        // With n = 5000 distinct items and eps ~ 4.6% (m = 2000 for
        // N = 1e5), a 10-sigma band is a safe per-instance property.
        let mut s = SBitmap::with_memory(100_000, 2000, seed).unwrap();
        for item in 0..5_000u64 {
            s.insert_u64(item.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ seed);
        }
        let rel = s.estimate() / 5_000.0 - 1.0;
        prop_assert!(rel.abs() < 0.5, "rel {}", rel);
    }
}
