//! Executable summary of the paper's headline claims, using the fast
//! paths (closed forms and the exact Markov recursion) so the whole file
//! runs in seconds. The full empirical versions live in
//! `sbitmap-experiments` and EXPERIMENTS.md; these tests are the
//! regression contract for the claims themselves.

use sbitmap::baselines::memory_model;
use sbitmap::core::{theory, Dimensioning};

#[test]
fn claim_scale_invariance_theorem3() {
    // §5.2 Theorem 3: RRMSE(n̂) = (C−1)^{−1/2} for every n in range —
    // verified against the exact chain, three configurations.
    for (n_max, m) in [(50_000u64, 1_200usize), (100_000, 2_000), (20_000, 2_700)] {
        let d = Dimensioning::from_memory(n_max, m).unwrap();
        let target = d.epsilon();
        for exp in [1u32, 2, 3, 4] {
            let n = 10u64.pow(exp).min(n_max / 2);
            let e = theory::exact_rrmse(&d, n);
            assert!(
                (e / target - 1.0).abs() < 1e-5,
                "N={n_max} m={m} n={n}: exact {e} vs theory {target}"
            );
        }
    }
}

#[test]
fn claim_unbiasedness_theorem3() {
    // E[n̂] = n exactly (martingale identity), via the exact fill PMF.
    let d = Dimensioning::from_memory(50_000, 1_200).unwrap();
    for &n in &[1u64, 13, 333, 8_000] {
        let pmf = theory::fill_pmf(&d, n);
        let mean: f64 = pmf
            .iter()
            .enumerate()
            .map(|(b, &p)| theory::t(&d, b) * p)
            .sum();
        assert!((mean / n as f64 - 1.0).abs() < 1e-8, "n={n}: E = {mean}");
    }
}

#[test]
fn claim_memory_rule_equation7() {
    // §5.1's worked example: 30 kbit for 1% over [1, 1e6].
    let d = Dimensioning::from_error(1_000_000, 0.01).unwrap();
    assert!(
        (d.m() as f64 / 30_000.0 - 1.0).abs() < 0.06,
        "paper's 30kbit example: got {} bits",
        d.m()
    );
    // And the §5.1 approximation tracks the exact rule.
    let approx = Dimensioning::approx_memory_bits(1_000_000, 0.01);
    assert!((approx / d.m() as f64 - 1.0).abs() < 0.02);
}

#[test]
fn claim_memory_advantage_over_hll() {
    // Abstract + §6.2: "significantly less memory ... for many common
    // practice cardinality scales".
    // Core network monitoring setup:
    assert!(memory_model::hll_over_sbitmap(1_000_000, 0.03) > 1.27);
    // Household monitoring setup:
    assert!(memory_model::hll_over_sbitmap(10_000, 0.03) > 2.19);
    // And the honest flip side the paper also states: the advantage
    // dissipates for huge N with coarse accuracy.
    assert!(memory_model::hll_over_sbitmap(10_000_000, 0.09) < 1.0);
}

#[test]
fn claim_asymptotic_crossover_formula() {
    // §5.1: S-bitmap beats HLL when eps < sqrt((log N)^eta / (2eN)).
    // The closed-form crossover and the memory-model crossover must
    // agree in order of magnitude across the evaluated range.
    for &n in &[10_000u64, 1_000_000, 10_000_000] {
        let asymptotic = theory::hll_crossover_epsilon(n);
        // Bisect the actual memory-model crossover.
        let (mut lo, mut hi): (f64, f64) = (1e-4, 4.0);
        for _ in 0..80 {
            let mid = (lo * hi).sqrt();
            if memory_model::hll_over_sbitmap(n, mid) > 1.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let actual = (lo * hi).sqrt();
        let ratio = asymptotic / actual;
        assert!(
            (0.2..5.0).contains(&ratio),
            "N={n}: asymptotic {asymptotic} vs actual {actual}"
        );
    }
}

#[test]
fn claim_truncation_only_helps() {
    // Remark after Theorem 3: truncating at b_max removes one-sided bias
    // near n = N. Exact check: the truncated estimator's MSE at n = N
    // is at most the raw estimator's.
    let d = Dimensioning::from_memory(20_000, 800).unwrap();
    let n = d.n_max();
    let pmf = theory::fill_pmf(&d, n);
    let mse = |cap: Option<usize>| -> f64 {
        pmf.iter()
            .enumerate()
            .map(|(b, &p)| {
                let b_eff = cap.map_or(b, |c| b.min(c));
                let rel = theory::t(&d, b_eff) / n as f64 - 1.0;
                rel * rel * p
            })
            .sum()
    };
    let truncated = mse(Some(d.b_max()));
    let raw = mse(None);
    assert!(
        truncated <= raw + 1e-15,
        "truncated {truncated} should not exceed raw {raw}"
    );
}

#[test]
fn claim_sampling_rates_strictly_decreasing() {
    // §3's sufficiency-and-necessity argument needs p_1 ≥ p_2 ≥ … — the
    // property that makes the duplicate filter exact. Check over the
    // whole usable schedule for the paper's configurations.
    for (n_max, m) in [
        (1u64 << 20, 4_000usize),
        (1_000_000, 8_000),
        (10_000, 2_700),
    ] {
        let s = sbitmap::core::RateSchedule::from_memory(n_max, m).unwrap();
        for k in 2..=s.len() {
            assert!(
                s.threshold(k) <= s.threshold(k - 1),
                "N={n_max} m={m}: thresholds rose at k={k}"
            );
        }
    }
}
