//! Distribution-level validation of the Lemma-1 fast simulator: the
//! simulated estimates and the real hashed sketch's estimates must be
//! samples from the same distribution (two-sample Kolmogorov–Smirnov),
//! not merely have matching RRMSE.

use std::sync::Arc;

use sbitmap::core::{simulate, DistinctCounter, RateSchedule, SBitmap};
use sbitmap::hash::rng::Xoshiro256StarStar;
use sbitmap::hash::{mix64, SplitMix64Hasher};
use sbitmap::stats::{ks_same_distribution, ks_statistic};
use sbitmap::stream::distinct_items;

fn real_estimates(schedule: &Arc<RateSchedule>, n: u64, reps: usize, salt: u64) -> Vec<f64> {
    (0..reps as u64)
        .map(|r| {
            let seed = mix64(r ^ salt);
            let mut s =
                SBitmap::with_shared_schedule(schedule.clone(), SplitMix64Hasher::new(seed));
            for item in distinct_items(seed, n) {
                s.insert_u64(item);
            }
            s.estimate()
        })
        .collect()
}

fn simulated_estimates(schedule: &Arc<RateSchedule>, n: u64, reps: usize, salt: u64) -> Vec<f64> {
    (0..reps as u64)
        .map(|r| {
            let mut rng = Xoshiro256StarStar::new(mix64(r ^ salt));
            simulate::simulate_estimate(schedule, n, &mut rng)
        })
        .collect()
}

#[test]
fn fast_sim_matches_real_sketch_distribution() {
    let schedule = Arc::new(RateSchedule::from_memory(1 << 20, 4000).unwrap());
    for (i, &n) in [1_000u64, 30_000, 400_000].iter().enumerate() {
        let reps = 800;
        let real = real_estimates(&schedule, n, reps, 0xd15 + i as u64);
        let sim = simulated_estimates(&schedule, n, reps, 0x51a + i as u64);
        let d = ks_statistic(&real, &sim);
        assert!(
            ks_same_distribution(&real, &sim, 0.001),
            "n={n}: KS statistic {d} rejects equality"
        );
    }
}

#[test]
fn fast_sim_detects_misconfigured_schedule() {
    // Negative control: estimates from a *different* schedule must be
    // distinguishable — otherwise the KS check above proves nothing.
    let a = Arc::new(RateSchedule::from_memory(1 << 20, 4000).unwrap());
    let b = Arc::new(RateSchedule::from_memory(1 << 20, 1800).unwrap());
    let n = 30_000;
    // Different m ⇒ same mean but different spread; KS needs a few more
    // samples to see a pure scale difference.
    let sa = simulated_estimates(&a, n, 2_000, 1);
    let sb = simulated_estimates(&b, n, 2_000, 2);
    assert!(
        !ks_same_distribution(&sa, &sb, 0.01),
        "schedules with different accuracy were indistinguishable"
    );
}

#[test]
fn real_sketch_unbiased_both_paths() {
    let schedule = Arc::new(RateSchedule::from_memory(1 << 20, 1800).unwrap());
    let n = 10_000u64;
    let reps = 600;
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let real = mean(&real_estimates(&schedule, n, reps, 7));
    let sim = mean(&simulated_estimates(&schedule, n, reps, 8));
    let eps = schedule.dims().epsilon();
    let tol = 4.0 * eps * n as f64 / (reps as f64).sqrt();
    assert!((real - n as f64).abs() < tol, "real mean {real}");
    assert!((sim - n as f64).abs() < tol, "sim mean {sim}");
}
