//! Cross-crate behavioural tests: every sketch honours the
//! `DistinctCounter` contract on the same streams.

use sbitmap::baselines::{
    AdaptiveBitmap, AdaptiveSampling, DistinctSampling, ExactCounter, FmSketch, HyperLogLog,
    KMinValues, LinearCounting, LogLog, MrBitmap, VirtualBitmap,
};
use sbitmap::core::{DistinctCounter, SBitmap};
use sbitmap::stream::{distinct_items, shuffle_stream, zipf_stream};

const N_MAX: u64 = 1_000_000;
const M: usize = 8_000;

fn fleet(seed: u64) -> Vec<Box<dyn DistinctCounter>> {
    vec![
        Box::new(SBitmap::with_memory(N_MAX, M, seed).unwrap()),
        Box::new(LinearCounting::new(M, seed).unwrap()),
        Box::new(VirtualBitmap::for_cardinality(M, N_MAX, seed).unwrap()),
        Box::new(AdaptiveBitmap::new(M, seed).unwrap()),
        Box::new(MrBitmap::with_memory(M, N_MAX, seed).unwrap()),
        Box::new(FmSketch::with_memory(M, seed).unwrap()),
        Box::new(LogLog::with_memory(M, N_MAX, seed).unwrap()),
        Box::new(HyperLogLog::with_memory(M, N_MAX, seed).unwrap()),
        Box::new(AdaptiveSampling::with_memory(M, seed).unwrap()),
        Box::new(DistinctSampling::with_memory(M, seed).unwrap()),
        Box::new(KMinValues::with_memory(M, seed).unwrap()),
        Box::new(ExactCounter::new(seed)),
    ]
}

#[test]
fn all_sketches_estimate_within_their_class_tolerance() {
    let n = 40_000u64;
    for mut sketch in fleet(11) {
        for item in distinct_items(5, n) {
            sketch.insert_u64(item);
        }
        let rel = sketch.estimate() / n as f64 - 1.0;
        // Linear counting is over capacity at 40k/8000 bits (v = 5) and
        // allowed a wide band; everything else must be within 25%.
        let tol = if sketch.name() == "linear-counting" {
            0.9
        } else {
            0.25
        };
        assert!(rel.abs() < tol, "{}: rel err {rel} at n={n}", sketch.name());
    }
}

#[test]
fn duplicates_never_change_estimates() {
    let (mut stream, truth) = zipf_stream(3, 5_000, 60_000, 1.2);
    for mut sketch in fleet(13) {
        for &item in &stream {
            sketch.insert_u64(item);
        }
        let first = sketch.estimate();
        // Replay the whole stream again, shuffled differently.
        shuffle_stream(&mut stream, 99);
        for &item in &stream {
            sketch.insert_u64(item);
        }
        assert_eq!(
            sketch.estimate(),
            first,
            "{}: duplicates changed the estimate",
            sketch.name()
        );
        let rel = first / truth as f64 - 1.0;
        assert!(rel.abs() < 0.5, "{}: {rel}", sketch.name());
    }
}

#[test]
fn order_invariance_of_final_state() {
    // All sketches here are order-insensitive on duplicate-free streams
    // *except* the S-bitmap and adaptive sampling (their sampling depends
    // on arrival order); for those we only require both orders to be
    // within tolerance, not identical.
    let n = 20_000u64;
    let mut forward: Vec<u64> = distinct_items(21, n).collect();
    for (mut a, mut b) in fleet(17).into_iter().zip(fleet(17)) {
        for &item in &forward {
            a.insert_u64(item);
        }
        shuffle_stream(&mut forward, 7);
        for &item in &forward {
            b.insert_u64(item);
        }
        let name = a.name();
        if matches!(name, "s-bitmap" | "adaptive-sampling" | "distinct-sampling") {
            let ra = a.estimate() / n as f64 - 1.0;
            let rb = b.estimate() / n as f64 - 1.0;
            assert!(ra.abs() < 0.2 && rb.abs() < 0.2, "{name}: {ra} vs {rb}");
        } else {
            assert_eq!(
                a.estimate(),
                b.estimate(),
                "{name} should be order-invariant"
            );
        }
    }
}

#[test]
fn reset_returns_every_sketch_to_empty() {
    for mut sketch in fleet(19) {
        for item in distinct_items(1, 5_000) {
            sketch.insert_u64(item);
        }
        sketch.reset();
        let e = sketch.estimate();
        // The raw log-counting estimators have a small additive floor
        // (alpha * m for LogLog, m/phi for FM); everything else must
        // report ~0.
        let floor = if matches!(sketch.name(), "loglog" | "fm-pcsa") {
            0.1 * M as f64
        } else {
            1e-9
        };
        assert!(e <= floor, "{}: estimate {e} after reset", sketch.name());
        // And they keep working after reset.
        for item in distinct_items(2, 1_000) {
            sketch.insert_u64(item);
        }
        let rel = sketch.estimate() / 1_000.0 - 1.0;
        let tol = if matches!(
            sketch.name(),
            "loglog" | "fm-pcsa" | "adaptive-sampling" | "distinct-sampling"
        ) {
            0.6 // small-capacity sampling sketches at n = 1000
        } else {
            0.3
        };
        assert!(rel.abs() < tol, "{}: post-reset rel {rel}", sketch.name());
    }
}

#[test]
fn byte_and_u64_interfaces_both_count() {
    for mut sketch in fleet(23) {
        for i in 0..2_000u64 {
            sketch.insert_bytes(format!("flow-{i}").as_bytes());
        }
        let rel = sketch.estimate() / 2_000.0 - 1.0;
        assert!(rel.abs() < 0.35, "{}: bytes path rel {rel}", sketch.name());
    }
}

#[test]
fn memory_accounting_within_budget() {
    for sketch in fleet(29) {
        if sketch.name() == "exact" {
            continue; // exact counter's memory grows by design
        }
        assert!(
            sketch.memory_bits() <= M,
            "{}: {} bits exceeds the {M}-bit budget",
            sketch.name(),
            sketch.memory_bits()
        );
        assert!(
            sketch.memory_bits() >= M / 2,
            "{}: suspiciously small",
            sketch.name()
        );
    }
}
