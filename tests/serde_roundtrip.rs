//! Serialization round-trips (requires `--features serde`): sketches can
//! be checkpointed mid-stream and resumed with identical behaviour.
#![cfg(feature = "serde")]

use sbitmap::baselines::{FmSketch, HyperLogLog, LinearCounting, MrBitmap};
use sbitmap::core::{DistinctCounter, SBitmap};
use sbitmap::stream::distinct_items;

#[test]
fn sbitmap_checkpoint_resume() {
    let mut original = SBitmap::with_memory(1_000_000, 8_000, 42).unwrap();
    for item in distinct_items(1, 30_000) {
        original.insert_u64(item);
    }
    let blob = serde_json::to_string(&original).unwrap();
    let mut restored: SBitmap = serde_json::from_str(&blob).unwrap();

    assert_eq!(restored.fill(), original.fill());
    assert_eq!(restored.estimate(), original.estimate());
    assert_eq!(restored.seed(), original.seed());

    // Resuming the same stream must behave identically to never pausing.
    for item in distinct_items(2, 30_000) {
        original.insert_u64(item);
        restored.insert_u64(item);
    }
    assert_eq!(restored.fill(), original.fill());
    assert_eq!(restored.estimate(), original.estimate());
}

#[test]
fn sbitmap_rejects_tampered_fill() {
    let mut s = SBitmap::with_memory(100_000, 2_000, 7).unwrap();
    for item in distinct_items(3, 5_000) {
        s.insert_u64(item);
    }
    let mut v: serde_json::Value = serde_json::to_value(&s).unwrap();
    v["fill"] = serde_json::json!(3);
    let r: Result<SBitmap, _> = serde_json::from_value(v);
    assert!(r.is_err(), "inconsistent fill must be rejected");
}

#[test]
fn baseline_sketches_round_trip() {
    let n = 10_000u64;

    let mut hll = HyperLogLog::with_memory(8_000, 1_000_000, 1).unwrap();
    let mut lc = LinearCounting::new(8_000, 2).unwrap();
    let mut mr = MrBitmap::with_memory(8_000, 1_000_000, 3).unwrap();
    let mut fm = FmSketch::with_memory(8_000, 4).unwrap();
    for item in distinct_items(9, n) {
        hll.insert_u64(item);
        lc.insert_u64(item);
        mr.insert_u64(item);
        fm.insert_u64(item);
    }

    let hll2: HyperLogLog = serde_json::from_str(&serde_json::to_string(&hll).unwrap()).unwrap();
    assert_eq!(hll2.estimate(), hll.estimate());
    let lc2: LinearCounting = serde_json::from_str(&serde_json::to_string(&lc).unwrap()).unwrap();
    assert_eq!(lc2.estimate(), lc.estimate());
    let mr2: MrBitmap = serde_json::from_str(&serde_json::to_string(&mr).unwrap()).unwrap();
    assert_eq!(mr2.estimate(), mr.estimate());
    let fm2: FmSketch = serde_json::from_str(&serde_json::to_string(&fm).unwrap()).unwrap();
    assert_eq!(fm2.estimate(), fm.estimate());
}
