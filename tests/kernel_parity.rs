//! Differential property tests for the runtime-dispatched kernel layer:
//! the AVX2 and scalar word kernels must be **bit-identical** on every
//! input shape, and everything built on top of them — bitmap unions,
//! fleet-arena absorbs, the fused sliding-window query — must produce
//! the same bits, counts, estimates and checkpoint bytes regardless of
//! which path the process dispatched to.
//!
//! Two layers of coverage:
//!
//! * **in-process**: [`WordKernels::scalar`] stays directly callable, so
//!   on an AVX2 host these tests compare the vector path against the
//!   scalar reference within one run;
//! * **cross-process**: CI runs the whole workspace suite a second time
//!   with `SBITMAP_FORCE_SCALAR=1`, which pins the dispatch to scalar —
//!   every golden-vector and bit-identity test then re-proves the
//!   scalar path end to end (checkpoint bytes in
//!   `tests/checkpoint_golden.rs` are the cross-path anchor).
//!
//! This workspace builds offline, so instead of proptest the properties
//! run over deterministic randomized cases drawn from the in-tree
//! [`sbitmap::hash::rng`] generators.

use sbitmap::bitvec::kernels::WordKernels;
use sbitmap::hash::rng::{Rng, SplitMix64};
use sbitmap::hash::{Hasher64, SplitMix64Hasher};
use sbitmap::{Bitmap, DistinctCounter, FleetArena, SBitmap, WindowedFleet};

/// Deterministic per-case RNG.
fn rng(case: u64) -> SplitMix64 {
    SplitMix64::new(0x5e1f_ca5e_0000_0000 ^ case)
}

/// Seeded random word slices covering the shapes the kernels
/// special-case: empty, sub-vector lengths, vector multiples, odd
/// lengths with scalar tails, all-zeros, all-ones, sparse.
fn word_cases(case: u64) -> Vec<(Vec<u64>, Vec<u64>)> {
    let mut g = rng(case);
    let mut out = Vec::new();
    for len in [
        0usize, 1, 2, 3, 4, 5, 7, 8, 12, 31, 63, 64, 65, 125, 127, 128, 200, 1023,
    ] {
        let dense_a: Vec<u64> = (0..len).map(|_| g.next_u64()).collect();
        let dense_b: Vec<u64> = (0..len).map(|_| g.next_u64()).collect();
        // Sparse: mostly-zero words, the realistic sketch shape.
        let sparse_a: Vec<u64> = (0..len)
            .map(|_| 1u64.checked_shl(g.next_u64() as u32 % 64).unwrap_or(0))
            .collect();
        let sparse_b: Vec<u64> = (0..len).map(|_| 0).collect();
        out.push((dense_a, dense_b));
        out.push((sparse_a, sparse_b));
        out.push((vec![0u64; len], vec![u64::MAX; len]));
        out.push((vec![u64::MAX; len], vec![u64::MAX; len]));
    }
    out
}

#[test]
fn word_kernels_scalar_and_dispatched_agree_on_random_slices() {
    let dispatched = WordKernels::dispatched();
    let scalar = WordKernels::scalar();
    for case in 0..8u64 {
        for (a, b) in word_cases(case) {
            assert_eq!(
                dispatched.popcount(&a),
                scalar.popcount(&a),
                "popcount case {case} len {}",
                a.len()
            );
            let (mut da, mut sa) = (a.clone(), a.clone());
            dispatched.or_into(&mut da, &b);
            scalar.or_into(&mut sa, &b);
            assert_eq!(da, sa, "or_into case {case} len {}", a.len());

            let (mut da, mut sa) = (a.clone(), a.clone());
            let dn = dispatched.union_or_count(&mut da, &b);
            let sn = scalar.union_or_count(&mut sa, &b);
            assert_eq!(
                (da, dn),
                (sa, sn),
                "union_or_count case {case} len {}",
                a.len()
            );

            let (mut da, mut sa) = (a.clone(), a.clone());
            let dp = dispatched.or_accumulate_popcount(&mut da, &b);
            let sp = scalar.or_accumulate_popcount(&mut sa, &b);
            assert_eq!(
                (da, dp),
                (sa, sp),
                "or_accumulate_popcount case {case} len {}",
                a.len()
            );
        }
    }
}

#[test]
fn gather_kernel_matches_scalar_and_chained_ors_at_every_source_count() {
    // 0..=10 sources covers every arm of the scalar pairing loop (the
    // `while srcs.len() > 2` reduction plus the 0/1/2-source endings)
    // and the AVX2 dynamic source loop, on both overwrite modes.
    let dispatched = WordKernels::dispatched();
    let scalar = WordKernels::scalar();
    for case in 0..4u64 {
        let mut g = rng(0x006a_74e7 ^ case);
        for len in [0usize, 1, 3, 4, 5, 64, 125, 1000] {
            let sources: Vec<Vec<u64>> = (0..10)
                .map(|_| (0..len).map(|_| g.next_u64() & g.next_u64()).collect())
                .collect();
            let base: Vec<u64> = (0..len).map(|_| g.next_u64() & g.next_u64()).collect();
            for n in 0..=sources.len() {
                let srcs: Vec<&[u64]> = sources[..n].iter().map(Vec::as_slice).collect();
                for overwrite in [true, false] {
                    if overwrite && n == 0 {
                        continue; // rejected by the wrapper
                    }
                    let (mut da, mut sa) = (base.clone(), base.clone());
                    let dp = dispatched.or_gather_popcount(&mut da, &srcs, overwrite);
                    let sp = scalar.or_gather_popcount(&mut sa, &srcs, overwrite);
                    assert_eq!(
                        (&da, dp),
                        (&sa, sp),
                        "case {case} len {len} srcs {n} overwrite {overwrite}"
                    );
                    // First principles: the gather must equal chained
                    // two-operand ORs plus a popcount.
                    let mut reference = if overwrite {
                        vec![0u64; len]
                    } else {
                        base.clone()
                    };
                    for s in &srcs {
                        scalar.or_into(&mut reference, s);
                    }
                    assert_eq!(da, reference, "case {case} len {len} srcs {n}");
                    assert_eq!(dp, scalar.popcount(&reference));
                }
            }
        }
    }
}

#[test]
fn batch_hashing_matches_the_scalar_reference_on_random_streams() {
    for case in 0..6u64 {
        let mut g = rng(0xbeef ^ case);
        let h = SplitMix64Hasher::new(g.next_u64());
        let n = 1 + (g.next_u64() % 2_000) as usize; // odd lengths, tails
        let items: Vec<u64> = (0..n).map(|_| g.next_u64()).collect();
        let mut dispatched = vec![0u64; n];
        let mut scalar = vec![0u64; n];
        h.hash_u64_batch(&items, &mut dispatched);
        h.hash_u64_batch_scalar(&items, &mut scalar);
        assert_eq!(dispatched, scalar, "case {case} len {n}");
        for (i, (&x, &got)) in items.iter().zip(&dispatched).enumerate() {
            assert_eq!(got, h.hash_u64(x), "case {case} lane {i}");
        }
    }
}

#[test]
fn bitmap_union_and_popcount_ride_the_kernels_consistently() {
    for case in 0..4u64 {
        let mut g = rng(0xb17 ^ case);
        let bits = 64 + (g.next_u64() % 9_000) as usize;
        let mut a = Bitmap::new(bits);
        let mut b = Bitmap::new(bits);
        let mut reference = vec![false; bits];
        for _ in 0..bits / 2 {
            let i = (g.next_u64() % bits as u64) as usize;
            let j = (g.next_u64() % bits as u64) as usize;
            a.set(i);
            b.set(j);
            reference[i] = true;
            reference[j] = true;
        }
        let before = a.count_ones();
        let newly = a.union_or(&b).unwrap();
        let expect: usize = reference.iter().filter(|&&x| x).count();
        assert_eq!(a.count_ones(), expect, "case {case}");
        assert_eq!(before + newly, expect, "case {case}");
        assert_eq!(
            WordKernels::scalar().popcount(a.words()),
            expect,
            "case {case}: scalar recount"
        );
    }
}

#[test]
fn batched_sbitmap_ingest_stays_bit_identical_to_scalar_inserts() {
    // End-to-end: the batched path runs the dispatched hash kernel and
    // the branchless probe; the scalar path hashes item-at-a-time. Same
    // bits, same fill, whatever the dispatch picked.
    for case in 0..3u64 {
        let mut g = rng(0x5b17 ^ case);
        let seed = g.next_u64();
        let mut batched = SBitmap::with_memory(1 << 20, 4_000, seed).unwrap();
        let mut scalar = SBitmap::with_memory(1 << 20, 4_000, seed).unwrap();
        let items: Vec<u64> = (0..20_003).map(|_| g.next_u64() % 30_000).collect();
        for &i in &items {
            scalar.insert_u64(i);
        }
        batched.insert_u64s(&items);
        assert_eq!(batched.fill(), scalar.fill(), "case {case}");
        assert_eq!(batched.bitmap(), scalar.bitmap(), "case {case}");
    }
}

#[test]
fn fused_window_queries_match_the_naive_reference_on_random_streams() {
    // The tentpole property: the fused single-pass window query (copy +
    // OR + fused popcount on the dispatched kernels, with the
    // single-epoch shortcut) returns exactly what the naive three-pass
    // reference returns, for every key, across rotations and expiry.
    for case in 0..4u64 {
        let mut g = rng(0xf05e_d00e ^ case);
        // Case 3 pins a 12-epoch window with a budget small enough that
        // keys go live in more than GATHER = 8 epochs, so the fused
        // query's second gather flush (overwrite = false) is exercised
        // against the naive reference, not just the single-flush shape.
        let window = if case == 3 {
            12
        } else {
            2 + (g.next_u64() % 4) as usize
        };
        let budget = if case == 3 {
            600
        } else {
            1 + g.next_u64() % 3_000
        };
        let mut fleet: WindowedFleet = WindowedFleet::new(100_000, 4_000, g.next_u64(), window)
            .unwrap()
            .with_epoch_items(budget)
            .unwrap();
        let pairs: Vec<(u64, u64)> = (0..15_000)
            .map(|_| (g.next_u64() % 9, g.next_u64() % 4_000))
            .collect();
        fleet.insert_batch(&pairs);
        if case == 3 {
            // 15000 items / 600 per epoch = 25 epochs; with the keys
            // uniform over 0..9 every key is live in all 12 of the ring.
            let live = fleet
                .window_epochs()
                .min(fleet.current_epoch() as usize + 1);
            assert!(live > 8, "case 3 must exceed one gather batch, got {live}");
        }
        for key in 0..10u64 {
            assert_eq!(
                fleet.window_fill(key),
                fleet.window_fill_naive(key),
                "case {case} fill key {key}"
            );
            assert_eq!(
                fleet.estimate(key),
                fleet.estimate_naive(key),
                "case {case} estimate key {key}"
            );
        }
        // The estimates sweep (what `bench-window` times) agrees with a
        // naive per-key sweep.
        let fused = fleet.estimates();
        let naive: Vec<(u64, f64)> = fleet
            .keys_sorted()
            .into_iter()
            .map(|k| (k, fleet.estimate_naive(k).unwrap()))
            .collect();
        assert_eq!(fused, naive, "case {case} sweep");
    }
}

#[test]
fn arena_union_through_kernels_preserves_checkpoint_bytes() {
    // The collector's windowed absorb path now runs union_or_count:
    // unioning two disjoint-key arenas must equal the arena a single
    // node would have built, checkpoint bytes included.
    for case in 0..3u64 {
        let mut g = rng(0x0ab5_012b ^ case);
        let seed = g.next_u64();
        let mut a: FleetArena = FleetArena::new(100_000, 4_000, seed).unwrap();
        let mut b: FleetArena = FleetArena::new(100_000, 4_000, seed).unwrap();
        let mut whole: FleetArena = FleetArena::new(100_000, 4_000, seed).unwrap();
        for _ in 0..12_000 {
            let key = g.next_u64() % 8;
            let item = g.next_u64() % 2_500;
            if key.is_multiple_of(2) {
                a.insert_u64(key, item);
            } else {
                b.insert_u64(key, item);
            }
            whole.insert_u64(key, item);
        }
        use sbitmap::Checkpoint;
        a.union_from(&b).unwrap();
        assert_eq!(a.checkpoint(), whole.checkpoint(), "case {case}");
    }
}
