//! Differential testing: every sketch against the exact counter across a
//! grid of workload shapes (sizes × duplication skews × orderings). Each
//! sketch must stay within its family's documented error envelope on
//! every workload — a broad net for estimator bugs that the targeted
//! unit tests might miss.

use sbitmap::baselines::{
    AdaptiveBitmap, AdaptiveSampling, DistinctSampling, ExactCounter, FmSketch, HyperLogLog,
    KMinValues, LinearCounting, LogLog, MrBitmap, VirtualBitmap,
};
use sbitmap::core::{DistinctCounter, SBitmap};
use sbitmap::stream::{shuffle_stream, zipf_stream};

const N_MAX: u64 = 1_000_000;
const M: usize = 16_000;

/// Error envelope per sketch at this budget (generous: these are
/// per-single-run bounds, ~4-6 sigma of each family's RRMSE, plus slack
/// for the sampling families' small capacities).
fn envelope(name: &str, n: u64) -> f64 {
    match name {
        "s-bitmap" => 0.10,
        // Linear counting degrades with load n/m.
        "linear-counting" => {
            if n <= 20_000 {
                0.10
            } else {
                0.80
            }
        }
        // Virtual bitmap samples at rho = 1.6m/N ≈ 2.6%: a 200-item
        // stream yields ~5 sampled items — granularity noise dominates.
        "virtual-bitmap" => {
            if n < 2_000 {
                2.0
            } else {
                0.25
            }
        }
        "adaptive-bitmap" => {
            // First interval at rate 1: saturates for large n.
            if n <= 20_000 {
                0.15
            } else {
                0.95
            }
        }
        "mr-bitmap" => 0.25,
        "fm-pcsa" => {
            // Like LogLog, raw PCSA has an additive floor of m/phi ≈ 646
            // (500 groups here): tiny streams are swamped by it.
            if n < 2_000 {
                9.0
            } else if n < 20_000 {
                0.60
            } else {
                0.25
            }
        }
        "loglog" => {
            if n < 20_000 {
                9.00 // documented small-n failure
            } else {
                0.30
            }
        }
        "hyperloglog" => 0.20,
        "adaptive-sampling" | "distinct-sampling" => 0.40,
        "kmv" => 0.30,
        "exact" => 1e-9,
        other => panic!("unknown sketch {other}"),
    }
}

fn fleet(seed: u64) -> Vec<Box<dyn DistinctCounter>> {
    vec![
        Box::new(SBitmap::with_memory(N_MAX, M, seed).unwrap()),
        Box::new(LinearCounting::new(M, seed).unwrap()),
        Box::new(VirtualBitmap::for_cardinality(M, N_MAX, seed).unwrap()),
        Box::new(AdaptiveBitmap::new(M, seed).unwrap()),
        Box::new(MrBitmap::with_memory(M, N_MAX, seed).unwrap()),
        Box::new(FmSketch::with_memory(M, seed).unwrap()),
        Box::new(LogLog::with_memory(M, N_MAX, seed).unwrap()),
        Box::new(HyperLogLog::with_memory(M, N_MAX, seed).unwrap()),
        Box::new(AdaptiveSampling::with_memory(M, seed).unwrap()),
        Box::new(DistinctSampling::with_memory(M, seed).unwrap()),
        Box::new(KMinValues::with_memory(M, seed).unwrap()),
        Box::new(ExactCounter::new(seed)),
    ]
}

#[test]
fn every_sketch_within_envelope_across_workload_grid() {
    let mut failures = Vec::new();
    let mut case = 0u64;
    for &distinct in &[200u64, 5_000, 60_000] {
        for &alpha in &[0.0f64, 1.1] {
            case += 1;
            let total = distinct * 4;
            let (mut items, truth) = zipf_stream(case, distinct, total, alpha);
            shuffle_stream(&mut items, case ^ 0xd1ff);
            for mut sketch in fleet(1000 + case) {
                for &item in &items {
                    sketch.insert_u64(item);
                }
                let rel = sketch.estimate() / truth as f64 - 1.0;
                let allowed = envelope(sketch.name(), truth);
                if rel.abs() > allowed {
                    failures.push(format!(
                        "{} on (distinct={distinct}, alpha={alpha}): rel {rel:.3} > {allowed}",
                        sketch.name()
                    ));
                }
            }
        }
    }
    assert!(
        failures.is_empty(),
        "envelope violations:\n{}",
        failures.join("\n")
    );
}

#[test]
fn ground_truth_agreement_on_duplicate_free_streams() {
    // On a duplicate-free stream the exact counter IS the truth; every
    // sketch's estimate must round-trip to within its envelope, and the
    // exact counter must be exact.
    let n = 30_000u64;
    for mut sketch in fleet(77) {
        let mut exact = ExactCounter::new(1);
        for item in sbitmap::stream::distinct_items(5, n) {
            sketch.insert_u64(item);
            exact.insert_u64(item);
        }
        assert_eq!(exact.estimate(), n as f64);
        let rel = sketch.estimate() / n as f64 - 1.0;
        let allowed = envelope(sketch.name(), n);
        assert!(
            rel.abs() <= allowed,
            "{}: rel {rel} > {allowed}",
            sketch.name()
        );
    }
}
