//! Hostile-input hardening for the checkpoint codec.
//!
//! A collector unframes bytes that crossed a network: every truncation,
//! every flipped bit, every lying length field must come back as a typed
//! [`sbitmap::core::SBitmapError`] — never a panic, never an
//! attacker-sized allocation. The sweeps are exhaustive over golden
//! frames of several checkpoint kinds (scalar sketch, sketch fleet —
//! authored by both the dense arena and the size-classed sparse fleet —
//! windowed fleet), plus a seeded pass that mutates payload bytes *and
//! repairs the trailing checksum*, so the payload validators themselves
//! face the hostile bytes instead of hiding behind the checksum.

use std::sync::Arc;

use sbitmap::core::codec::{self, peek_kind, CounterKind};
use sbitmap::hash::mix64;
use sbitmap::{Checkpoint, FleetArena, RateSchedule, SBitmap, SparseFleet, WindowedFleet};

/// Golden frames: one valid v2 checkpoint per kind under test.
fn golden_frames() -> Vec<(&'static str, Vec<u8>)> {
    let mut sketch = SBitmap::with_memory(10_000, 256, 42).unwrap();
    for i in 0..300u64 {
        use sbitmap::DistinctCounter;
        sketch.insert_u64(i);
    }

    let schedule = Arc::new(RateSchedule::from_memory(5_000, 300).unwrap());
    let mut fleet: FleetArena = FleetArena::with_schedule(schedule.clone(), 9);
    for key in [3u64, 11, 42] {
        fleet.touch(key);
        for item in 0..40u64 {
            fleet.insert_u64(key, key * 1_000 + item);
        }
    }

    let mut ring: WindowedFleet = WindowedFleet::with_schedule(schedule, 9, 2).unwrap();
    ring.absorb_epoch(0, &fleet).unwrap();
    ring.advance_to(1).unwrap();
    ring.absorb_epoch(1, &fleet).unwrap();

    // A sparse-authored fleet whose stride is wide enough for the full
    // size-class ladder (m = 4 000 → 2-word, 8-word and dense classes),
    // with keys pinned at different rungs: on the wire its frame is
    // indistinguishable from a dense arena's, so every sweep below runs
    // over a checkpoint that *came from* size-classed slab storage too.
    let mut sparse: SparseFleet = SparseFleet::new(5_000, 4_000, 9).unwrap();
    sparse.insert_u64(3, 1);
    for item in 0..6u64 {
        sparse.insert_u64(11, item);
    }
    for item in 0..5_000u64 {
        sparse.insert_u64(42, item);
    }

    vec![
        ("sbitmap", sketch.checkpoint()),
        ("sketch-fleet", fleet.checkpoint()),
        ("windowed-fleet", ring.checkpoint()),
        ("sparse-fleet", sparse.checkpoint()),
    ]
}

/// Feed `bytes` through the whole decode surface; every path must
/// return, not panic. Returns whether *any* path accepted the bytes.
fn decode_all(bytes: &[u8]) -> bool {
    let _ = peek_kind(bytes);
    let unframed = codec::unframe(bytes).is_ok();
    // The typed restores run their kind/payload validators even when
    // unframe succeeds (a repaired-checksum mutation can be framed
    // perfectly yet lie in every payload field).
    let a = <SBitmap as Checkpoint>::restore(bytes).is_ok();
    let b = <FleetArena as Checkpoint>::restore(bytes).is_ok();
    let c = <WindowedFleet as Checkpoint>::restore(bytes).is_ok();
    let d = <SparseFleet as Checkpoint>::restore(bytes).is_ok();
    // Sparse is a storage strategy, not a wire format: on every byte
    // string — golden, truncated, resealed, lying — both fleet flavors
    // must reach the same verdict, so each sweep in this file doubles
    // as a differential test of the sparse restore path.
    assert_eq!(b, d, "FleetArena / SparseFleet restore verdicts diverged");
    unframed && (a || b || c || d)
}

#[test]
fn goldens_are_valid_to_begin_with() {
    for (name, bytes) in golden_frames() {
        assert!(decode_all(&bytes), "{name}: golden frame must decode");
    }
}

#[test]
fn every_truncation_is_a_typed_error() {
    for (name, bytes) in golden_frames() {
        for cut in 0..bytes.len() {
            assert!(
                !decode_all(&bytes[..cut]),
                "{name}: truncation to {cut} of {} bytes decoded",
                bytes.len()
            );
        }
    }
}

#[test]
fn every_bit_flip_is_caught_by_the_checksum() {
    for (name, bytes) in golden_frames() {
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut evil = bytes.clone();
                evil[i] ^= 1 << bit;
                assert!(
                    codec::unframe(&evil).is_err(),
                    "{name}: flipped bit {bit} of byte {i} passed the checksum"
                );
                // And the full restore path agrees (no panic either).
                let _ = <WindowedFleet as Checkpoint>::restore(&evil);
            }
        }
    }
}

/// Re-seal a mutated body with a fresh valid checksum, so the bytes
/// sail past `unframe` and hit the payload validators.
fn reseal(body_and_checksum: &[u8], mutate: impl FnOnce(&mut [u8])) -> Vec<u8> {
    let mut evil = body_and_checksum[..body_and_checksum.len() - 8].to_vec();
    mutate(&mut evil);
    let checksum = sbitmap::hash::xxh64(&evil, 0);
    evil.extend_from_slice(&checksum.to_le_bytes());
    evil
}

#[test]
fn resealed_payload_mutations_never_panic() {
    // Seeded exhaustive-ish sweep: XOR a seed-derived byte into every
    // payload position, reseal, decode. The decoder may accept benign
    // mutations (e.g. a changed seed field) but must never panic and
    // must reject structural lies with typed errors.
    for (name, bytes) in golden_frames() {
        for i in 0..bytes.len() - 8 {
            let patch = (mix64(0xb0_5711 ^ i as u64) & 0xff) as u8;
            let patch = if patch == 0 { 0x5a } else { patch };
            let evil = reseal(&bytes, |body| body[i] ^= patch);
            let _ = decode_all(&evil); // must return, whatever the verdict
        }
        let _ = name;
    }
}

#[test]
fn oversized_declared_lengths_are_rejected_not_allocated() {
    // Every schedule-bearing payload opens with the same config header:
    // n_max u64 @6, m u64 @14, sampling_bits u32 @22, seed u64 @26,
    // then the first kind-specific length field @34 (scalar fill, fleet
    // record count, ring window span). Stamp all-ones over the fields
    // that drive allocations or loops; each lie must come back as a
    // typed error — `m` via the `MAX_WIRE_M` wire cap *before* the
    // O(m) schedule rebuild, the rest by bounds-checking against the
    // bytes actually present.
    for (name, bytes) in golden_frames() {
        for offset in [14usize, 34] {
            let evil = reseal(&bytes, |body| body[offset..offset + 8].fill(0xff));
            assert!(
                !decode_all(&evil),
                "{name}: all-ones length field at {offset} was accepted"
            );
        }
    }
    // And a half-plausible lie: m one past the wire cap, not 2^64-1.
    let (_, bytes) = &golden_frames()[1];
    let evil = reseal(bytes, |body| {
        let m = (sbitmap::core::codec::MAX_WIRE_M as u64 + 1).to_le_bytes();
        body[14..22].copy_from_slice(&m);
    });
    assert!(!decode_all(&evil), "m just above the wire cap was accepted");
    // The sparse restore derives its whole geometry — class specs, slab
    // extents, record sizes — from `m`, so the same wire cap must bounce
    // the lie before any of that is allocated.
    assert!(
        <SparseFleet as Checkpoint>::restore(&evil).is_err(),
        "sparse restore accepted m above the wire cap"
    );
}

/// Sketch-fleet payload offsets (the golden fleet has `m = 300`, stride
/// 5 words): record count @34, record 0 key @42, fill @50, words
/// @58..98, record 1 key @98. Each forged field must come back as a
/// typed error from *both* fleet flavors.
#[test]
fn sketch_fleet_payload_lies_are_rejected_by_both_flavors() {
    let (_, bytes) = &golden_frames()[1];
    let both_reject = |evil: &[u8], what: &str| {
        assert!(
            <FleetArena as Checkpoint>::restore(evil).is_err(),
            "dense restore accepted {what}"
        );
        assert!(
            <SparseFleet as Checkpoint>::restore(evil).is_err(),
            "sparse restore accepted {what}"
        );
    };
    // Record 1 claims record 0's key.
    let evil = reseal(bytes, |body| {
        let key0: [u8; 8] = body[42..50].try_into().unwrap();
        body[98..106].copy_from_slice(&key0);
    });
    both_reject(&evil, "a duplicate key");
    // A fill counter disagreeing with the bitmap popcount.
    let evil = reseal(bytes, |body| body[50] ^= 1);
    both_reject(&evil, "a fill/popcount mismatch");
    // A bit at position `m` in the tail word, with the fill counter
    // adjusted to match, so only the beyond-`m` validator can object.
    let evil = reseal(bytes, |body| {
        body[95] |= 0x10; // bit 300 of record 0's bitmap; m = 300
        let fill = u64::from_le_bytes(body[50..58].try_into().unwrap()) + 1;
        body[50..58].copy_from_slice(&fill.to_le_bytes());
    });
    both_reject(&evil, "a bit at m");
    // A record count smaller than the records present: the leftover
    // bytes are a typed trailing-garbage error, not silently dropped
    // fleet state.
    let evil = reseal(bytes, |body| {
        body[34..42].copy_from_slice(&2u64.to_le_bytes());
    });
    both_reject(&evil, "trailing records beyond the declared count");
}

#[test]
fn sketch_fleet_goldens_restore_into_both_flavors_byte_identically() {
    for (name, bytes) in golden_frames() {
        if peek_kind(&bytes).unwrap().1 != CounterKind::SketchFleet {
            continue;
        }
        let dense = <FleetArena as Checkpoint>::restore(&bytes).unwrap();
        let sparse = <SparseFleet as Checkpoint>::restore(&bytes).unwrap();
        assert_eq!(dense.checkpoint(), bytes, "{name}: dense round-trip");
        assert_eq!(sparse.checkpoint(), bytes, "{name}: sparse round-trip");
        assert_eq!(sparse.keys_sorted(), dense.keys_sorted(), "{name}: keys");
        for key in sparse.keys_sorted() {
            assert_eq!(
                sparse.estimate(key),
                dense.estimate(key),
                "{name}: estimate for key {key}"
            );
        }
    }
    // The sparse-authored golden spans the class ladder; restoring it
    // lands each record straight in its fill-appropriate class rather
    // than replaying the promotion history.
    let (_, bytes) = &golden_frames()[3];
    let sparse = <SparseFleet as Checkpoint>::restore(bytes).unwrap();
    assert!(sparse.class_count() > 1, "ladder collapsed to one class");
    let histogram = sparse.class_histogram();
    let occupied = histogram.iter().filter(|&&n| n > 0).count();
    assert!(
        occupied >= 2,
        "expected a spread across classes: {histogram:?}"
    );
    assert_eq!(
        sparse.class_of(42),
        Some(sparse.class_count() - 1),
        "the hot key belongs in the dense class"
    );
}

#[test]
fn foreign_magic_version_and_kind_are_typed_errors() {
    let (_, bytes) = &golden_frames()[0];
    // Wrong magic.
    let evil = reseal(bytes, |body| body[..4].copy_from_slice(b"EVIL"));
    assert!(codec::unframe(&evil).is_err(), "bad magic accepted");
    // Unknown version.
    let evil = reseal(bytes, |body| body[4] = 200);
    assert!(codec::unframe(&evil).is_err(), "unknown version accepted");
    // Unknown kind tag.
    let evil = reseal(bytes, |body| body[5] = 250);
    assert!(codec::unframe(&evil).is_err(), "unknown kind tag accepted");
    // Kind confusion: a valid fleet frame restored as a scalar sketch
    // must be a typed mismatch error, not UB or panic.
    let fleet_frame = &golden_frames()[1].1;
    assert_eq!(peek_kind(fleet_frame).unwrap().1, CounterKind::SketchFleet);
    assert!(<SBitmap as Checkpoint>::restore(fleet_frame).is_err());
}

#[test]
fn empty_and_tiny_inputs_are_typed_errors() {
    for n in 0..32usize {
        let zeros = vec![0u8; n];
        assert!(codec::unframe(&zeros).is_err(), "{n} zero bytes accepted");
        assert!(<WindowedFleet as Checkpoint>::restore(&zeros).is_err());
    }
}

// ---------------------------------------------------------------------
// v3 fleet-delta frames (tag 11)
// ---------------------------------------------------------------------
//
// The delta decoder faces the same adversary as the checkpoint decoders
// — plus geometry of its own: run starts/lengths, sparse position gaps,
// and the round chain. Every structural lie must be rejected *before*
// the O(m) work it would drive (the `MAX_WIRE_M` discipline), and a
// delta whose baseline was never absorbed must bounce off the receiver
// without touching the ring.

use sbitmap::core::{
    AbsorbOutcome, DeltaBody, DeltaRecord, DeltaRun, FleetDeltaFrame, SBitmapError,
};

/// `m = 130`: stride 3 with two live bits in the tail word, so the
/// sweeps cover the tail-mask branch of the run coder.
const DELTA_M: usize = 130;
const DELTA_STRIDE: usize = 3;

fn delta_schedule() -> Arc<RateSchedule> {
    Arc::new(RateSchedule::from_memory(2_000, DELTA_M).unwrap())
}

/// A frame with the schedule's configuration key at (epoch 4, round).
fn delta_frame(round: u32) -> FleetDeltaFrame {
    let schedule = delta_schedule();
    let dims = schedule.dims();
    FleetDeltaFrame::new(
        dims.n_max(),
        dims.m(),
        schedule.split().sampling_bits(),
        9,
        4,
        round,
    )
}

/// Golden v3 frames: a dense baseline (runs mode) and a sparse delta.
fn golden_delta_frames() -> Vec<(&'static str, Vec<u8>)> {
    let mut baseline = delta_frame(0);
    // Dense enough that `from_delta_words` picks run coding, with a gap
    // word so two runs exist, plus an untouched key (empty record).
    baseline.push(3, &[0x00ff_ffff_ffff_ffff, 0, 0b11]);
    baseline.push(11, &[0, 0, 0]);
    let mut delta = delta_frame(1);
    // Sparse: a handful of scattered bits, varint-gap coded.
    delta.push(3, &[1 << 7, 1 << 3, 1]);
    delta.push(11, &[0b1001, 0, 0b10]);
    vec![("baseline", baseline.encode()), ("delta", delta.encode())]
}

#[test]
fn v3_goldens_roundtrip_to_begin_with() {
    for (name, bytes) in golden_delta_frames() {
        let (version, kind) = peek_kind(&bytes).unwrap();
        assert_eq!(version, 3, "{name}");
        assert_eq!(kind, CounterKind::FleetDelta, "{name}");
        let frame = FleetDeltaFrame::decode(&bytes).unwrap();
        assert_eq!(frame.encode(), bytes, "{name}: re-encode");
    }
}

#[test]
fn v3_every_truncation_is_a_typed_error() {
    for (name, bytes) in golden_delta_frames() {
        for cut in 0..bytes.len() {
            assert!(
                FleetDeltaFrame::decode(&bytes[..cut]).is_err(),
                "{name}: truncation to {cut} of {} bytes decoded",
                bytes.len()
            );
        }
    }
}

#[test]
fn v3_every_bit_flip_is_caught_by_the_checksum() {
    for (name, bytes) in golden_delta_frames() {
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut evil = bytes.clone();
                evil[i] ^= 1 << bit;
                assert!(
                    FleetDeltaFrame::decode(&evil).is_err(),
                    "{name}: flipped bit {bit} of byte {i} decoded"
                );
            }
        }
    }
}

#[test]
fn v3_resealed_payload_mutations_never_panic() {
    for (name, bytes) in golden_delta_frames() {
        for i in 0..bytes.len() - 8 {
            let patch = (mix64(0xde17a ^ i as u64) & 0xff) as u8;
            let patch = if patch == 0 { 0x5a } else { patch };
            let evil = reseal(&bytes, |body| body[i] ^= patch);
            let _ = FleetDeltaFrame::decode(&evil); // must return
        }
        let _ = name;
    }
}

/// Payload byte offsets inside the framed bytes (6-byte header first):
/// `n_max` @6, `m` @14, `d` @22, `seed` @26, `epoch` @34, `round` @42,
/// `count` @46, first record key @54, bits @62, mode @66, body @67.
#[test]
fn v3_header_lies_are_rejected_before_any_om_work() {
    let (_, bytes) = &golden_delta_frames()[0];
    // m: all-ones, one past the wire cap, and zero — all refused by the
    // header guards before any stride math or allocation.
    for m_lie in [u64::MAX, sbitmap::core::codec::MAX_WIRE_M as u64 + 1, 0u64] {
        let evil = reseal(bytes, |body| {
            body[14..22].copy_from_slice(&m_lie.to_le_bytes())
        });
        assert!(
            FleetDeltaFrame::decode(&evil).is_err(),
            "m = {m_lie} accepted"
        );
    }
    // The reserved full-frame sentinel round.
    let evil = reseal(bytes, |body| body[42..46].fill(0xff));
    assert!(
        FleetDeltaFrame::decode(&evil).is_err(),
        "round u32::MAX accepted"
    );
    // A record count far beyond the bytes present: bounded against the
    // payload before the record vector is allocated.
    let evil = reseal(bytes, |body| body[46..54].fill(0xff));
    assert!(
        FleetDeltaFrame::decode(&evil).is_err(),
        "all-ones record count accepted"
    );
    // A forged run length (first record is runs-mode: run count @67,
    // first run start @71, len @75).
    let evil = reseal(bytes, |body| body[75..79].fill(0xff));
    assert!(
        FleetDeltaFrame::decode(&evil).is_err(),
        "all-ones run length accepted"
    );
    // A forged run count, bounded against the payload.
    let evil = reseal(bytes, |body| body[67..71].fill(0xff));
    assert!(
        FleetDeltaFrame::decode(&evil).is_err(),
        "all-ones run count accepted"
    );
    // An unknown body mode.
    let evil = reseal(bytes, |body| body[66] = 99);
    assert!(
        FleetDeltaFrame::decode(&evil).is_err(),
        "unknown body mode accepted"
    );
}

/// Encode a frame whose records were forged by hand (encode trusts the
/// caller; decode must not).
fn forged(records: Vec<DeltaRecord>) -> Vec<u8> {
    let mut frame = delta_frame(0);
    frame.records = records;
    frame.encode()
}

#[test]
fn v3_forged_run_geometry_is_rejected() {
    // Overlapping runs.
    let bytes = forged(vec![DeltaRecord {
        key: 3,
        bits: 3,
        body: DeltaBody::Runs(vec![
            DeltaRun {
                start: 0,
                words: vec![1, 1],
            },
            DeltaRun {
                start: 1,
                words: vec![1],
            },
        ]),
    }]);
    assert!(FleetDeltaFrame::decode(&bytes).is_err(), "overlapping runs");

    // An empty run.
    let bytes = forged(vec![DeltaRecord {
        key: 3,
        bits: 0,
        body: DeltaBody::Runs(vec![DeltaRun {
            start: 0,
            words: vec![],
        }]),
    }]);
    assert!(FleetDeltaFrame::decode(&bytes).is_err(), "empty run");

    // A run extending past the stride.
    let bytes = forged(vec![DeltaRecord {
        key: 3,
        bits: 2,
        body: DeltaBody::Runs(vec![DeltaRun {
            start: DELTA_STRIDE as u32 - 1,
            words: vec![1, 1],
        }]),
    }]);
    assert!(FleetDeltaFrame::decode(&bytes).is_err(), "run past stride");

    // A tail word setting bits at or beyond m (m = 130 leaves two live
    // bits in word 2; bit 2 of that word is bit 130 of the bitmap).
    let bytes = forged(vec![DeltaRecord {
        key: 3,
        bits: 1,
        body: DeltaBody::Runs(vec![DeltaRun {
            start: 2,
            words: vec![0b100],
        }]),
    }]);
    assert!(
        FleetDeltaFrame::decode(&bytes).is_err(),
        "bit at m accepted"
    );

    // A bits header disagreeing with the run popcount.
    let bytes = forged(vec![DeltaRecord {
        key: 3,
        bits: 2,
        body: DeltaBody::Runs(vec![DeltaRun {
            start: 0,
            words: vec![1],
        }]),
    }]);
    assert!(
        FleetDeltaFrame::decode(&bytes).is_err(),
        "bits lie accepted"
    );

    // bits > m outright.
    let bytes = forged(vec![DeltaRecord {
        key: 3,
        bits: DELTA_M as u32 + 1,
        body: DeltaBody::Sparse(vec![0]),
    }]);
    assert!(
        FleetDeltaFrame::decode(&bytes).is_err(),
        "bits > m accepted"
    );

    // A sparse position at m.
    let bytes = forged(vec![DeltaRecord {
        key: 3,
        bits: 1,
        body: DeltaBody::Sparse(vec![DELTA_M as u32]),
    }]);
    assert!(FleetDeltaFrame::decode(&bytes).is_err(), "position at m");

    // Duplicate sparse positions (gap 0 on the wire).
    let bytes = forged(vec![DeltaRecord {
        key: 3,
        bits: 2,
        body: DeltaBody::Sparse(vec![5, 5]),
    }]);
    assert!(
        FleetDeltaFrame::decode(&bytes).is_err(),
        "duplicate position"
    );

    // Non-ascending record keys.
    let mut frame = delta_frame(0);
    frame.records = vec![
        DeltaRecord {
            key: 9,
            bits: 1,
            body: DeltaBody::Sparse(vec![0]),
        },
        DeltaRecord {
            key: 3,
            bits: 1,
            body: DeltaBody::Sparse(vec![0]),
        },
    ];
    let mut w_bytes = std::panic::catch_unwind(move || frame.encode());
    if let Ok(bytes) = &mut w_bytes {
        // If encode ever stops asserting, decode still must reject.
        assert!(FleetDeltaFrame::decode(bytes).is_err(), "descending keys");
    }
}

#[test]
fn v3_version_kind_pairings_are_enforced() {
    let (_, bytes) = &golden_delta_frames()[0];
    // Fleet-delta under version 2: refused at the frame layer.
    let evil = reseal(bytes, |body| body[4] = 2);
    assert!(codec::unframe(&evil).is_err(), "v2 fleet-delta accepted");
    // A checkpoint kind under version 3: refused at the frame layer.
    let (_, checkpoint) = &golden_frames()[2];
    let evil = reseal(checkpoint, |body| body[4] = 3);
    assert!(
        codec::unframe(&evil).is_err(),
        "v3 checkpoint kind accepted"
    );
    // A valid v2 checkpoint fed to the delta decoder: typed mismatch.
    assert!(
        FleetDeltaFrame::decode(checkpoint).is_err(),
        "checkpoint decoded as a delta frame"
    );
}

#[test]
fn v3_delta_without_baseline_is_refused_before_touching_the_ring() {
    let mut ring: WindowedFleet = WindowedFleet::with_schedule(delta_schedule(), 9, 2).unwrap();
    ring.advance_to(4).unwrap();
    let before = ring.checkpoint();

    let mut orphan = delta_frame(2);
    orphan.push(3, &[1, 0, 0]);
    match ring.absorb_delta_from(7, &orphan) {
        Err(SBitmapError::MissingBaseline { epoch: 4, round: 2 }) => {}
        other => panic!("expected MissingBaseline, got {other:?}"),
    }
    assert_eq!(
        ring.checkpoint(),
        before,
        "a refused delta must not touch the ring"
    );

    // After the baseline lands, the same frame is welcome — and the
    // refusal did not poison the (source, round) guard.
    let mut baseline = delta_frame(0);
    baseline.push(3, &[0, 0, 0]);
    assert_eq!(
        ring.absorb_delta_from(7, &baseline).unwrap(),
        AbsorbOutcome::Absorbed
    );
    assert_eq!(
        ring.absorb_delta_from(7, &orphan).unwrap(),
        AbsorbOutcome::Absorbed
    );
    assert_eq!(
        ring.absorb_delta_from(7, &orphan).unwrap(),
        AbsorbOutcome::Duplicate
    );
    assert_ne!(ring.checkpoint(), before, "the replayed delta landed");
}
