//! Hostile-input hardening for the checkpoint codec.
//!
//! A collector unframes bytes that crossed a network: every truncation,
//! every flipped bit, every lying length field must come back as a typed
//! [`sbitmap::core::SBitmapError`] — never a panic, never an
//! attacker-sized allocation. The sweeps are exhaustive over golden
//! frames of several checkpoint kinds (scalar sketch, sketch fleet,
//! windowed fleet), plus a seeded pass that mutates payload bytes *and
//! repairs the trailing checksum*, so the payload validators themselves
//! face the hostile bytes instead of hiding behind the checksum.

use std::sync::Arc;

use sbitmap::core::codec::{self, peek_kind, CounterKind};
use sbitmap::hash::mix64;
use sbitmap::{Checkpoint, FleetArena, RateSchedule, SBitmap, WindowedFleet};

/// Golden frames: one valid v2 checkpoint per kind under test.
fn golden_frames() -> Vec<(&'static str, Vec<u8>)> {
    let mut sketch = SBitmap::with_memory(10_000, 256, 42).unwrap();
    for i in 0..300u64 {
        use sbitmap::DistinctCounter;
        sketch.insert_u64(i);
    }

    let schedule = Arc::new(RateSchedule::from_memory(5_000, 300).unwrap());
    let mut fleet: FleetArena = FleetArena::with_schedule(schedule.clone(), 9);
    for key in [3u64, 11, 42] {
        fleet.touch(key);
        for item in 0..40u64 {
            fleet.insert_u64(key, key * 1_000 + item);
        }
    }

    let mut ring: WindowedFleet = WindowedFleet::with_schedule(schedule, 9, 2).unwrap();
    ring.absorb_epoch(0, &fleet).unwrap();
    ring.advance_to(1).unwrap();
    ring.absorb_epoch(1, &fleet).unwrap();

    vec![
        ("sbitmap", sketch.checkpoint()),
        ("sketch-fleet", fleet.checkpoint()),
        ("windowed-fleet", ring.checkpoint()),
    ]
}

/// Feed `bytes` through the whole decode surface; every path must
/// return, not panic. Returns whether *any* path accepted the bytes.
fn decode_all(bytes: &[u8]) -> bool {
    let _ = peek_kind(bytes);
    let unframed = codec::unframe(bytes).is_ok();
    // The typed restores run their kind/payload validators even when
    // unframe succeeds (a repaired-checksum mutation can be framed
    // perfectly yet lie in every payload field).
    let a = <SBitmap as Checkpoint>::restore(bytes).is_ok();
    let b = <FleetArena as Checkpoint>::restore(bytes).is_ok();
    let c = <WindowedFleet as Checkpoint>::restore(bytes).is_ok();
    unframed && (a || b || c)
}

#[test]
fn goldens_are_valid_to_begin_with() {
    for (name, bytes) in golden_frames() {
        assert!(decode_all(&bytes), "{name}: golden frame must decode");
    }
}

#[test]
fn every_truncation_is_a_typed_error() {
    for (name, bytes) in golden_frames() {
        for cut in 0..bytes.len() {
            assert!(
                !decode_all(&bytes[..cut]),
                "{name}: truncation to {cut} of {} bytes decoded",
                bytes.len()
            );
        }
    }
}

#[test]
fn every_bit_flip_is_caught_by_the_checksum() {
    for (name, bytes) in golden_frames() {
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut evil = bytes.clone();
                evil[i] ^= 1 << bit;
                assert!(
                    codec::unframe(&evil).is_err(),
                    "{name}: flipped bit {bit} of byte {i} passed the checksum"
                );
                // And the full restore path agrees (no panic either).
                let _ = <WindowedFleet as Checkpoint>::restore(&evil);
            }
        }
    }
}

/// Re-seal a mutated body with a fresh valid checksum, so the bytes
/// sail past `unframe` and hit the payload validators.
fn reseal(body_and_checksum: &[u8], mutate: impl FnOnce(&mut [u8])) -> Vec<u8> {
    let mut evil = body_and_checksum[..body_and_checksum.len() - 8].to_vec();
    mutate(&mut evil);
    let checksum = sbitmap::hash::xxh64(&evil, 0);
    evil.extend_from_slice(&checksum.to_le_bytes());
    evil
}

#[test]
fn resealed_payload_mutations_never_panic() {
    // Seeded exhaustive-ish sweep: XOR a seed-derived byte into every
    // payload position, reseal, decode. The decoder may accept benign
    // mutations (e.g. a changed seed field) but must never panic and
    // must reject structural lies with typed errors.
    for (name, bytes) in golden_frames() {
        for i in 0..bytes.len() - 8 {
            let patch = (mix64(0xb0_5711 ^ i as u64) & 0xff) as u8;
            let patch = if patch == 0 { 0x5a } else { patch };
            let evil = reseal(&bytes, |body| body[i] ^= patch);
            let _ = decode_all(&evil); // must return, whatever the verdict
        }
        let _ = name;
    }
}

#[test]
fn oversized_declared_lengths_are_rejected_not_allocated() {
    // Every schedule-bearing payload opens with the same config header:
    // n_max u64 @6, m u64 @14, sampling_bits u32 @22, seed u64 @26,
    // then the first kind-specific length field @34 (scalar fill, fleet
    // record count, ring window span). Stamp all-ones over the fields
    // that drive allocations or loops; each lie must come back as a
    // typed error — `m` via the `MAX_WIRE_M` wire cap *before* the
    // O(m) schedule rebuild, the rest by bounds-checking against the
    // bytes actually present.
    for (name, bytes) in golden_frames() {
        for offset in [14usize, 34] {
            let evil = reseal(&bytes, |body| body[offset..offset + 8].fill(0xff));
            assert!(
                !decode_all(&evil),
                "{name}: all-ones length field at {offset} was accepted"
            );
        }
    }
    // And a half-plausible lie: m one past the wire cap, not 2^64-1.
    let (_, bytes) = &golden_frames()[1];
    let evil = reseal(bytes, |body| {
        let m = (sbitmap::core::codec::MAX_WIRE_M as u64 + 1).to_le_bytes();
        body[14..22].copy_from_slice(&m);
    });
    assert!(!decode_all(&evil), "m just above the wire cap was accepted");
}

#[test]
fn foreign_magic_version_and_kind_are_typed_errors() {
    let (_, bytes) = &golden_frames()[0];
    // Wrong magic.
    let evil = reseal(bytes, |body| body[..4].copy_from_slice(b"EVIL"));
    assert!(codec::unframe(&evil).is_err(), "bad magic accepted");
    // Unknown version.
    let evil = reseal(bytes, |body| body[4] = 200);
    assert!(codec::unframe(&evil).is_err(), "unknown version accepted");
    // Unknown kind tag.
    let evil = reseal(bytes, |body| body[5] = 250);
    assert!(codec::unframe(&evil).is_err(), "unknown kind tag accepted");
    // Kind confusion: a valid fleet frame restored as a scalar sketch
    // must be a typed mismatch error, not UB or panic.
    let fleet_frame = &golden_frames()[1].1;
    assert_eq!(peek_kind(fleet_frame).unwrap().1, CounterKind::SketchFleet);
    assert!(<SBitmap as Checkpoint>::restore(fleet_frame).is_err());
}

#[test]
fn empty_and_tiny_inputs_are_typed_errors() {
    for n in 0..32usize {
        let zeros = vec![0u8; n];
        assert!(codec::unframe(&zeros).is_err(), "{n} zero bytes accepted");
        assert!(<WindowedFleet as Checkpoint>::restore(&zeros).is_err());
    }
}
