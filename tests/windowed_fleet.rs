//! Property tests locking the sliding-window subsystem together:
//!
//! * the windowed fleet over epoch arenas must match a naive reference
//!   — one standalone [`SketchFleet`] per epoch, window fill = popcount
//!   of the OR of the key's per-epoch bitmaps, estimate =
//!   `min(t(U), Σ t(Lₑ))` — **bit-for-bit** over seeded random streams,
//!   including epoch expiry and restore-from-checkpoint mid-window;
//! * batched windowed ingest must be bit-identical to a scalar feed
//!   even when a batch spans epoch boundaries on the count-driven
//!   clock;
//! * the windowed collector's per-link estimates must be invariant in
//!   the node shard count (1, 2 and 4 shards).
//!
//! This workspace builds offline, so instead of proptest these
//! properties run over deterministic randomized cases drawn from the
//! in-tree [`sbitmap::hash::rng`] generators: every case is
//! reproducible from its loop index, and a failure message names the
//! case that broke.

use sbitmap::core::estimator;
use sbitmap::hash::rng::{Rng, SplitMix64};
use sbitmap::stream::{run_windowed_pipeline, WindowedPipelineConfig};
use sbitmap::{Bitmap, Checkpoint, SketchFleet, WindowedFleet};

/// Deterministic per-case RNG.
fn rng(case: u64) -> SplitMix64 {
    SplitMix64::new(0x51ed_e000_0000_0000 ^ case)
}

/// A seeded random `(key, item)` stream over a bounded key space, with
/// item repeats both within and across epochs (persistent flows).
fn stream(g: &mut SplitMix64, len: usize, key_space: u64, item_space: u64) -> Vec<(u64, u64)> {
    (0..len)
        .map(|_| (g.next_below(key_space), g.next_below(item_space)))
        .collect()
}

/// The naive reference over standalone per-epoch fleets (oldest first):
/// union fill and the `min(t(U), Σ t(Lₑ))` estimate.
fn reference(epochs: &[SketchFleet], key: u64) -> Option<(usize, f64)> {
    let mut acc: Option<Bitmap> = None;
    let mut sum = 0.0;
    for fleet in epochs {
        if let Some(sketch) = fleet.sketch(key) {
            sum += estimator::estimate_from_fill(fleet.schedule().dims(), sketch.fill());
            match &mut acc {
                None => acc = Some(sketch.bitmap().clone()),
                Some(bits) => {
                    bits.union_or(sketch.bitmap()).unwrap();
                }
            }
        }
    }
    let bits = acc?;
    let fill = bits.count_ones();
    let dims = *epochs[0].schedule().dims();
    Some((fill, estimator::estimate_from_fill(&dims, fill).min(sum)))
}

const N_MAX: u64 = 100_000;
const M_BITS: usize = 4_000;

#[test]
fn windowed_fleet_matches_naive_reference_over_random_streams() {
    for case in 0..4u64 {
        let mut g = rng(case);
        let window = 2 + (case as usize % 3); // W ∈ {2, 3, 4}
        let epochs = window + 2 + case as usize; // always exercises expiry
        let mut w: WindowedFleet = WindowedFleet::new(N_MAX, M_BITS, 9, window).unwrap();
        let mut per_epoch: Vec<SketchFleet> = Vec::new();
        for _ in 0..epochs {
            let pairs = stream(&mut g, 6_000, 6, 2_500);
            let mut naive = SketchFleet::new(N_MAX, M_BITS, 9).unwrap();
            w.insert_batch(&pairs);
            naive.insert_batch(&pairs);
            per_epoch.push(naive);
            w.rotate();
        }
        // After the final rotate the open epoch is empty; the live
        // window is the last `window − 1` closed epochs.
        let live = &per_epoch[epochs - (window - 1)..];
        for key in 0..6u64 {
            let expect = reference(live, key);
            assert_eq!(
                w.window_fill(key),
                expect.map(|(fill, _)| fill),
                "case {case}: union fill for key {key}"
            );
            assert_eq!(
                w.estimate(key),
                expect.map(|(_, est)| est),
                "case {case}: estimate for key {key}"
            );
        }
        // Expired epochs held state the window no longer reports.
        assert!(
            reference(&per_epoch[..epochs - (window - 1)], 0).is_some(),
            "case {case}: sanity — early epochs saw key 0"
        );
    }
}

#[test]
fn count_driven_batches_match_scalar_across_epoch_boundaries() {
    for case in 0..4u64 {
        let mut g = rng(case ^ 0xba7c);
        let budget = 700 + case * 350;
        let pairs = stream(&mut g, 12_000, 5, 3_000);
        let mut batched: WindowedFleet = WindowedFleet::new(N_MAX, M_BITS, 9, 3)
            .unwrap()
            .with_epoch_items(budget)
            .unwrap();
        let mut scalar = batched.clone();
        // Feed in uneven slices so epoch boundaries land mid-slice.
        let mut rest = pairs.as_slice();
        while !rest.is_empty() {
            let take = (1 + g.next_below(2_000) as usize).min(rest.len());
            batched.insert_batch(&rest[..take]);
            rest = &rest[take..];
        }
        for &(k, item) in &pairs {
            scalar.insert_u64(k, item);
        }
        assert_eq!(
            batched.current_epoch(),
            scalar.current_epoch(),
            "case {case}"
        );
        assert_eq!(batched.estimates(), scalar.estimates(), "case {case}");
        assert_eq!(batched.checkpoint(), scalar.checkpoint(), "case {case}");
    }
}

#[test]
fn restore_mid_window_resumes_bit_identically() {
    for case in 0..3u64 {
        let mut g = rng(case ^ 0xc4e);
        let mut w: WindowedFleet = WindowedFleet::new(N_MAX, M_BITS, 9, 3)
            .unwrap()
            .with_epoch_items(2_000)
            .unwrap();
        w.insert_batch(&stream(&mut g, 7_000, 6, 2_000));
        // Checkpoint mid-window (open epoch partially filled), restore,
        // and continue both under more epochs than the window holds.
        let bytes = w.checkpoint();
        let mut restored: WindowedFleet = Checkpoint::restore(&bytes).unwrap();
        assert_eq!(restored.estimates(), w.estimates(), "case {case}");
        let more = stream(&mut g, 9_000, 6, 2_000);
        w.insert_batch(&more);
        restored.insert_batch(&more);
        assert_eq!(
            restored.current_epoch(),
            w.current_epoch(),
            "case {case}: clock resumed"
        );
        assert_eq!(restored.estimates(), w.estimates(), "case {case}");
        assert_eq!(restored.checkpoint(), w.checkpoint(), "case {case}");
    }
}

#[test]
fn windowed_collector_is_shard_count_invariant() {
    for case in 0..2u64 {
        let base = WindowedPipelineConfig {
            links: 12,
            shards: 1,
            n_max: N_MAX,
            m_bits: M_BITS,
            window: 3,
            epochs: 5,
            rounds: 2,
            seed: 7 + case,
        };
        let one = run_windowed_pipeline(&base).unwrap();
        for shards in [2usize, 4] {
            let cfg = WindowedPipelineConfig {
                shards,
                ..base.clone()
            };
            let many = run_windowed_pipeline(&cfg).unwrap();
            assert_eq!(one.links.len(), many.links.len(), "case {case}");
            for (a, b) in one.links.iter().zip(&many.links) {
                assert_eq!(a.link, b.link, "case {case}");
                assert_eq!(a.truth, b.truth, "case {case} link {}", a.link);
                assert_eq!(
                    a.estimate, b.estimate,
                    "case {case} link {} at {shards} shards",
                    a.link
                );
            }
            assert_eq!(
                one.mean_abs_rel_err, many.mean_abs_rel_err,
                "case {case} at {shards} shards"
            );
        }
        // And the estimates stay honest against the window truth.
        assert!(
            one.mean_abs_rel_err < 0.2,
            "case {case}: mean |rel err| {}",
            one.mean_abs_rel_err
        );
    }
}

#[test]
fn windowed_checkpoint_restores_after_collector_absorbs() {
    // A central ring assembled from shard frames checkpoints and
    // restores like any other windowed fleet: run the pipeline twice
    // with the same seed and compare summaries (pure function of the
    // configuration).
    let cfg = WindowedPipelineConfig {
        links: 8,
        shards: 2,
        n_max: N_MAX,
        m_bits: M_BITS,
        window: 2,
        epochs: 4,
        rounds: 2,
        seed: 11,
    };
    let a = run_windowed_pipeline(&cfg).unwrap();
    let b = run_windowed_pipeline(&cfg).unwrap();
    for (ra, rb) in a.links.iter().zip(&b.links) {
        assert_eq!(ra.estimate, rb.estimate, "link {}", ra.link);
    }
    assert_eq!(a.bytes_shipped, b.bytes_shipped, "byte-deterministic");
}
