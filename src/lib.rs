//! # sbitmap — Distinct Counting with a Self-Learning Bitmap
//!
//! Facade crate for the S-bitmap workspace: a production-quality Rust
//! reproduction of Chen, Cao, Shepp and Nguyen, *Distinct Counting with a
//! Self-Learning Bitmap* (ICDE 2009; arXiv:1107.1697), including every
//! baseline the paper evaluates against and the full experiment harness.
//!
//! The commonly used types are re-exported at the crate root:
//!
//! ```
//! use sbitmap::{SBitmap, DistinctCounter, HyperLogLog};
//!
//! let mut sb = SBitmap::with_error(1_000_000, 0.03, 42).unwrap();
//! let mut hll = HyperLogLog::with_error(1_000_000, 0.03, 42).unwrap();
//! for flow in 0..10_000u64 {
//!     sb.insert_u64(flow);
//!     hll.insert_u64(flow);
//! }
//! println!("S-bitmap: {:.0} with {} bits", sb.estimate(), sb.memory_bits());
//! println!("HLL:      {:.0} with {} bits", hll.estimate(), hll.memory_bits());
//! // The paper's Table 2: at this (N, eps) the S-bitmap is smaller.
//! assert!(sb.memory_bits() < hll.memory_bits());
//! ```
//!
//! See the subcrates for the full APIs:
//!
//! * [`core`] — the S-bitmap itself (sketch, dimensioning,
//!   theory, exact fast simulator);
//! * [`baselines`] — linear counting, virtual bitmap,
//!   multiresolution bitmap, FM/PCSA, LogLog, HyperLogLog, adaptive
//!   sampling, KMV, and the exact counter;
//! * [`hash`] — stream hashes and deterministic RNGs;
//! * [`bitvec`] — packed bitmaps and register files;
//! * [`stream`] — workload and synthetic-trace generators;
//! * [`stats`] — error metrics and the replication harness;
//! * [`daemon`] — `sbitmapd`, the fault-tolerant TCP collector daemon
//!   and its retrying node agent.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use sbitmap_baselines as baselines;
pub use sbitmap_bitvec as bitvec;
pub use sbitmap_core as core;
pub use sbitmap_daemon as daemon;
pub use sbitmap_hash as hash;
pub use sbitmap_stats as stats;
pub use sbitmap_stream as stream;

pub use sbitmap_baselines::{
    AdaptiveBitmap, AdaptiveSampling, DistinctSampling, ExactCounter, FmSketch, HyperLogLog,
    KMinValues, LinearCounting, LogLog, MrBitmap, VirtualBitmap,
};
pub use sbitmap_bitvec::{AtomicBitmap, BitStore, Bitmap, OwnedBitStore, SliceBitmap};
pub use sbitmap_core::{
    BatchedCounter, Checkpoint, ConcurrentSBitmap, CounterKind, Dimensioning, DistinctCounter,
    EpochClock, FleetArena, KeyedEstimates, MergeableCounter, ParallelFleet, RateSchedule,
    RotatingCounter, SBitmap, SBitmapError, SharedCounter, SketchFleet, SparseFleet, WindowedFleet,
};
pub use sbitmap_hash::{HashKind, Hasher64};
